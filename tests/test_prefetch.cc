/**
 * @file
 * Unit tests for the baseline prefetchers: next-line, IP-stride, BOP
 * and DA-AMPM, driven through a mock issuer.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "prefetch/ampm.hh"
#include "prefetch/bop.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/next_line.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/vldp.hh"

namespace pfsim::prefetch
{
namespace
{

class MockIssuer : public PrefetchIssuer
{
  public:
    bool
    issuePrefetch(Addr addr, bool fill_this_level) override
    {
        issued.push_back({blockAlign(addr), fill_this_level});
        return accept;
    }

    std::vector<std::pair<Addr, bool>> issued;
    bool accept = true;
};

OperateInfo
miss(Addr addr, Pc pc = 0x400100)
{
    OperateInfo info;
    info.addr = blockAlign(addr);
    info.pc = pc;
    info.cacheHit = false;
    return info;
}

TEST(NextLine, PrefetchesFollowingBlocks)
{
    NextLinePrefetcher prefetcher(2);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    prefetcher.operate(miss(0x10000));
    ASSERT_EQ(issuer.issued.size(), 2u);
    EXPECT_EQ(issuer.issued[0].first, Addr{0x10040});
    EXPECT_EQ(issuer.issued[1].first, Addr{0x10080});
    EXPECT_TRUE(issuer.issued[0].second);
}

TEST(IpStride, RequiresConfidenceBeforePrefetching)
{
    IpStridePrefetcher prefetcher(64, 2);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    // stride 3 blocks: needs 2 confirmations before issuing.
    prefetcher.operate(miss(0x10000));
    prefetcher.operate(miss(0x10000 + 3 * blockSize));
    EXPECT_TRUE(issuer.issued.empty());
    prefetcher.operate(miss(0x10000 + 6 * blockSize));
    EXPECT_TRUE(issuer.issued.empty());
    prefetcher.operate(miss(0x10000 + 9 * blockSize));
    ASSERT_EQ(issuer.issued.size(), 2u);
    EXPECT_EQ(issuer.issued[0].first, Addr{0x10000} + 12 * blockSize);
    EXPECT_EQ(issuer.issued[1].first, Addr{0x10000} + 15 * blockSize);
}

TEST(IpStride, DistinctPcsTrackIndependently)
{
    IpStridePrefetcher prefetcher(64, 1);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    // PCs chosen to land in distinct tracker entries ((pc>>2)&63).
    for (int i = 0; i < 6; ++i) {
        prefetcher.operate(
            miss(0x10000 + Addr(i) * 2 * blockSize, 0x40));
        prefetcher.operate(
            miss(0x800000 + Addr(i) * 5 * blockSize, 0x80));
    }
    // Both streams confident: prefetches at both strides appear.
    std::set<Addr> targets(issuer.issued.size()
                               ? std::set<Addr>()
                               : std::set<Addr>());
    for (auto &[addr, fill] : issuer.issued)
        targets.insert(addr);
    bool has_stride2 = false, has_stride5 = false;
    for (Addr t : targets) {
        if (t > 0x10000 && t < 0x800000)
            has_stride2 = true;
        if (t > 0x800000)
            has_stride5 = true;
    }
    EXPECT_TRUE(has_stride2);
    EXPECT_TRUE(has_stride5);
}

TEST(IpStride, StrideChangeResetsConfidence)
{
    IpStridePrefetcher prefetcher(64, 1);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    prefetcher.operate(miss(0x10000));
    prefetcher.operate(miss(0x10000 + 2 * blockSize));
    prefetcher.operate(miss(0x10000 + 4 * blockSize));
    prefetcher.operate(miss(0x10000 + 6 * blockSize));
    issuer.issued.clear();
    // Break the stride; no prefetch until re-established.
    prefetcher.operate(miss(0x10000 + 11 * blockSize));
    prefetcher.operate(miss(0x10000 + 12 * blockSize));
    EXPECT_TRUE(issuer.issued.empty());
}

/** Feed BOP a steady stride and let fills echo back. */
void
trainBop(BopPrefetcher &prefetcher, MockIssuer &issuer, int stride,
         int accesses)
{
    Addr addr = Addr{1} << 30;
    for (int i = 0; i < accesses; ++i) {
        prefetcher.operate(miss(addr));
        // Deliver fills: the demand block itself arrives.
        FillInfo fill;
        fill.addr = addr;
        fill.wasPrefetch = false;
        prefetcher.fill(fill);
        for (auto &[pf_addr, level] : issuer.issued) {
            FillInfo pf_fill;
            pf_fill.addr = pf_addr;
            pf_fill.wasPrefetch = true;
            prefetcher.fill(pf_fill);
        }
        issuer.issued.clear();
        addr += Addr(stride) * blockSize;
        if (pageOffset(addr) + unsigned(stride) >= blocksPerPage)
            addr += pageSize; // stay away from page-edge noise
    }
}

TEST(Bop, LearnsDominantOffset)
{
    BopPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    trainBop(prefetcher, issuer, 6, 4000);
    // The selected offset must be a multiple of the stride (6, 12...):
    // those are the only offsets that score on this stream.
    EXPECT_EQ(prefetcher.currentOffset() % 6, 0)
        << "offset=" << prefetcher.currentOffset();
    EXPECT_TRUE(prefetcher.prefetchEnabled());
}

TEST(Bop, PrefetchesAtSelectedOffsetWithinPage)
{
    BopPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    trainBop(prefetcher, issuer, 4, 4000);
    issuer.issued.clear();

    const Addr trigger = (Addr{3} << 30) + 4 * blockSize;
    prefetcher.operate(miss(trigger));
    ASSERT_EQ(issuer.issued.size(), 1u);
    EXPECT_EQ(issuer.issued[0].first,
              trigger +
                  Addr(prefetcher.currentOffset()) * blockSize);
}

TEST(Bop, NeverCrossesPageBoundary)
{
    BopPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    trainBop(prefetcher, issuer, 4, 4000);
    issuer.issued.clear();

    // Trigger near the end of a page.
    const Addr trigger =
        ((Addr{5} << 30) | ((blocksPerPage - 1) << blockShift));
    prefetcher.operate(miss(trigger));
    for (auto &[addr, level] : issuer.issued)
        EXPECT_EQ(pageNumber(addr), pageNumber(trigger));
}

TEST(Bop, RandomTrafficDisablesPrefetching)
{
    BopConfig config;
    config.badScore = 3;
    BopPrefetcher prefetcher(config);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    // Pseudo-random addresses: no offset ever scores.
    std::uint64_t state = 12345;
    for (int i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        prefetcher.operate(miss((state >> 20) << blockShift));
        FillInfo fill;
        fill.addr = (state >> 20) << blockShift;
        prefetcher.fill(fill);
        issuer.issued.clear();
    }
    EXPECT_FALSE(prefetcher.prefetchEnabled());
}

TEST(Ampm, DetectsForwardStrideAfterTwoConfirmations)
{
    AmpmPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{7} << 30;
    prefetcher.operate(miss(page + 0 * blockSize));
    prefetcher.operate(miss(page + 2 * blockSize));
    issuer.issued.clear();
    prefetcher.operate(miss(page + 4 * blockSize));
    // l - k and l - 2k accessed for k = 2 -> prefetch l + k = block 6.
    bool found = false;
    for (auto &[addr, level] : issuer.issued)
        found |= addr == page + 6 * blockSize;
    EXPECT_TRUE(found);
}

TEST(Ampm, DetectsBackwardStride)
{
    AmpmPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{9} << 30;
    prefetcher.operate(miss(page + 40 * blockSize));
    prefetcher.operate(miss(page + 37 * blockSize));
    issuer.issued.clear();
    prefetcher.operate(miss(page + 34 * blockSize));
    bool found = false;
    for (auto &[addr, level] : issuer.issued)
        found |= addr == page + 31 * blockSize;
    EXPECT_TRUE(found);
}

TEST(Ampm, DoesNotPrefetchAlreadyAccessedLines)
{
    AmpmPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{11} << 30;
    // Touch the block that would be the prefetch target first.
    prefetcher.operate(miss(page + 6 * blockSize));
    prefetcher.operate(miss(page + 0 * blockSize));
    prefetcher.operate(miss(page + 2 * blockSize));
    issuer.issued.clear();
    prefetcher.operate(miss(page + 4 * blockSize));
    for (auto &[addr, level] : issuer.issued)
        EXPECT_NE(addr, page + 6 * blockSize);
}

TEST(Ampm, DegreeLimitsPrefetchesPerTrigger)
{
    AmpmConfig config;
    config.degree = 1;
    AmpmPrefetcher prefetcher(config);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{13} << 30;
    // Dense accesses support multiple stride hypotheses.
    for (int block : {0, 1, 2, 3, 4, 5})
        prefetcher.operate(miss(page + Addr(block) * blockSize));
    // Last trigger may issue at most one prefetch.
    issuer.issued.clear();
    prefetcher.operate(miss(page + 6 * blockSize));
    EXPECT_LE(issuer.issued.size(), 1u);
}

/** Walk one page of a VLDP instance with the given delta sequence. */
void
walkVldp(VldpPrefetcher &vldp, Addr page,
         const std::vector<int> &deltas, int reps)
{
    int offset = 0;
    int step = 0;
    for (int i = 0; i < reps && offset < int(blocksPerPage); ++i) {
        OperateInfo info;
        info.addr = (page << pageShift) |
                    (Addr(unsigned(offset)) << blockShift);
        info.pc = 0x400100;
        vldp.operate(info);
        offset += deltas[std::size_t(step++) % deltas.size()];
    }
}

TEST(Vldp, LearnsConstantDelta)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    for (Addr page = 21000; page < 21006; ++page)
        walkVldp(vldp, page, {2}, 30);
    ASSERT_GT(issuer.issued.size(), 20u);
    // After training, the chained predictions follow the +2 stride.
    const Addr last = issuer.issued.back().first;
    EXPECT_EQ(pageOffset(last) % 2, 0u);
}

TEST(Vldp, LongerHistoryDisambiguatesAlternation)
{
    // Delta sequence {1, 3}: DPT-1 sees conflicting successors for
    // both deltas, DPT-2 resolves them exactly.
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    for (Addr page = 22000; page < 22010; ++page)
        walkVldp(vldp, page, {1, 3}, 30);

    // Replay a fresh page and check predictions follow the pattern:
    // offsets visited are 0,1,4,5,8,9,... so every prefetch target
    // must be congruent to 0 or 1 mod 4.
    issuer.issued.clear();
    walkVldp(vldp, 22999, {1, 3}, 30);
    ASSERT_GT(issuer.issued.size(), 5u);
    int conforming = 0;
    for (auto &[addr, fill] : issuer.issued) {
        const unsigned mod = pageOffset(addr) % 4;
        conforming += (mod == 0 || mod == 1) ? 1 : 0;
    }
    EXPECT_GT(conforming * 10, int(issuer.issued.size()) * 8)
        << conforming << " of " << issuer.issued.size();
}

TEST(Vldp, OptPredictsFirstAccessOfAPage)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    // Pages always start at offset 0 and first-step by +1.
    for (Addr page = 23000; page < 23008; ++page)
        walkVldp(vldp, page, {1}, 4);

    issuer.issued.clear();
    OperateInfo info;
    info.addr = Addr{23999} << pageShift; // offset 0, brand new page
    info.pc = 0x400100;
    vldp.operate(info);
    ASSERT_FALSE(issuer.issued.empty());
    EXPECT_EQ(issuer.issued[0].first,
              (Addr{23999} << pageShift) | blockSize);
}

TEST(Vldp, NeverPrefetchesOutsideThePage)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    for (Addr page = 24000; page < 24010; ++page)
        walkVldp(vldp, page, {7}, 12);
    for (auto &[addr, fill] : issuer.issued) {
        EXPECT_GE(pageNumber(addr), Addr{24000});
        EXPECT_LT(pageNumber(addr), Addr{24010});
    }
}

TEST(Vldp, RandomTrafficStaysQuiet)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    std::uint64_t state = 777;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        OperateInfo info;
        info.addr = (Addr{25000} + (state >> 40) % 8) << pageShift |
                    (((state >> 20) % blocksPerPage) << blockShift);
        info.pc = 0x400100;
        vldp.operate(info);
    }
    // Random deltas give low-accuracy DPT entries; issue volume stays
    // well below one per access.
    EXPECT_LT(issuer.issued.size(), 2500u);
}

TEST(NoPrefetcher, IsSilent)
{
    NoPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    prefetcher.operate(miss(0x10000));
    FillInfo fill;
    prefetcher.fill(fill);
    EXPECT_TRUE(issuer.issued.empty());
    EXPECT_EQ(prefetcher.name(), "none");
}

} // namespace
} // namespace pfsim::prefetch
