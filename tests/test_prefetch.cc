/**
 * @file
 * Unit tests for the baseline prefetchers (next-line, IP-stride, BOP,
 * DA-AMPM, VLDP), the PMP and Pythia backends, and the backend
 * registry's spec grammar, driven through a mock issuer.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/generic_filter.hh"
#include "prefetch/ampm.hh"
#include "prefetch/bop.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/next_line.hh"
#include "prefetch/pmp.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/pythia.hh"
#include "prefetch/registry/registry.hh"
#include "prefetch/vldp.hh"
#include "snapshot/serial.hh"

namespace pfsim::prefetch
{
namespace
{

class MockIssuer : public PrefetchIssuer
{
  public:
    bool
    issuePrefetch(Addr addr, bool fill_this_level) override
    {
        issued.push_back({blockAlign(addr), fill_this_level});
        return accept;
    }

    std::vector<std::pair<Addr, bool>> issued;
    bool accept = true;
};

OperateInfo
miss(Addr addr, Pc pc = 0x400100)
{
    OperateInfo info;
    info.addr = blockAlign(addr);
    info.pc = pc;
    info.cacheHit = false;
    return info;
}

TEST(NextLine, PrefetchesFollowingBlocks)
{
    NextLinePrefetcher prefetcher(2);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    prefetcher.operate(miss(0x10000));
    ASSERT_EQ(issuer.issued.size(), 2u);
    EXPECT_EQ(issuer.issued[0].first, Addr{0x10040});
    EXPECT_EQ(issuer.issued[1].first, Addr{0x10080});
    EXPECT_TRUE(issuer.issued[0].second);
}

TEST(IpStride, RequiresConfidenceBeforePrefetching)
{
    IpStridePrefetcher prefetcher(64, 2);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    // stride 3 blocks: needs 2 confirmations before issuing.
    prefetcher.operate(miss(0x10000));
    prefetcher.operate(miss(0x10000 + 3 * blockSize));
    EXPECT_TRUE(issuer.issued.empty());
    prefetcher.operate(miss(0x10000 + 6 * blockSize));
    EXPECT_TRUE(issuer.issued.empty());
    prefetcher.operate(miss(0x10000 + 9 * blockSize));
    ASSERT_EQ(issuer.issued.size(), 2u);
    EXPECT_EQ(issuer.issued[0].first, Addr{0x10000} + 12 * blockSize);
    EXPECT_EQ(issuer.issued[1].first, Addr{0x10000} + 15 * blockSize);
}

TEST(IpStride, DistinctPcsTrackIndependently)
{
    IpStridePrefetcher prefetcher(64, 1);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    // PCs chosen to land in distinct tracker entries ((pc>>2)&63).
    for (int i = 0; i < 6; ++i) {
        prefetcher.operate(
            miss(0x10000 + Addr(i) * 2 * blockSize, 0x40));
        prefetcher.operate(
            miss(0x800000 + Addr(i) * 5 * blockSize, 0x80));
    }
    // Both streams confident: prefetches at both strides appear.
    std::set<Addr> targets(issuer.issued.size()
                               ? std::set<Addr>()
                               : std::set<Addr>());
    for (auto &[addr, fill] : issuer.issued)
        targets.insert(addr);
    bool has_stride2 = false, has_stride5 = false;
    for (Addr t : targets) {
        if (t > 0x10000 && t < 0x800000)
            has_stride2 = true;
        if (t > 0x800000)
            has_stride5 = true;
    }
    EXPECT_TRUE(has_stride2);
    EXPECT_TRUE(has_stride5);
}

TEST(IpStride, StrideChangeResetsConfidence)
{
    IpStridePrefetcher prefetcher(64, 1);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    prefetcher.operate(miss(0x10000));
    prefetcher.operate(miss(0x10000 + 2 * blockSize));
    prefetcher.operate(miss(0x10000 + 4 * blockSize));
    prefetcher.operate(miss(0x10000 + 6 * blockSize));
    issuer.issued.clear();
    // Break the stride; no prefetch until re-established.
    prefetcher.operate(miss(0x10000 + 11 * blockSize));
    prefetcher.operate(miss(0x10000 + 12 * blockSize));
    EXPECT_TRUE(issuer.issued.empty());
}

/** Feed BOP a steady stride and let fills echo back. */
void
trainBop(BopPrefetcher &prefetcher, MockIssuer &issuer, int stride,
         int accesses)
{
    Addr addr = Addr{1} << 30;
    for (int i = 0; i < accesses; ++i) {
        prefetcher.operate(miss(addr));
        // Deliver fills: the demand block itself arrives.
        FillInfo fill;
        fill.addr = addr;
        fill.wasPrefetch = false;
        prefetcher.fill(fill);
        for (auto &[pf_addr, level] : issuer.issued) {
            FillInfo pf_fill;
            pf_fill.addr = pf_addr;
            pf_fill.wasPrefetch = true;
            prefetcher.fill(pf_fill);
        }
        issuer.issued.clear();
        addr += Addr(stride) * blockSize;
        if (pageOffset(addr) + unsigned(stride) >= blocksPerPage)
            addr += pageSize; // stay away from page-edge noise
    }
}

TEST(Bop, LearnsDominantOffset)
{
    BopPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    trainBop(prefetcher, issuer, 6, 4000);
    // The selected offset must be a multiple of the stride (6, 12...):
    // those are the only offsets that score on this stream.
    EXPECT_EQ(prefetcher.currentOffset() % 6, 0)
        << "offset=" << prefetcher.currentOffset();
    EXPECT_TRUE(prefetcher.prefetchEnabled());
}

TEST(Bop, PrefetchesAtSelectedOffsetWithinPage)
{
    BopPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    trainBop(prefetcher, issuer, 4, 4000);
    issuer.issued.clear();

    const Addr trigger = (Addr{3} << 30) + 4 * blockSize;
    prefetcher.operate(miss(trigger));
    ASSERT_EQ(issuer.issued.size(), 1u);
    EXPECT_EQ(issuer.issued[0].first,
              trigger +
                  Addr(prefetcher.currentOffset()) * blockSize);
}

TEST(Bop, NeverCrossesPageBoundary)
{
    BopPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    trainBop(prefetcher, issuer, 4, 4000);
    issuer.issued.clear();

    // Trigger near the end of a page.
    const Addr trigger =
        ((Addr{5} << 30) | ((blocksPerPage - 1) << blockShift));
    prefetcher.operate(miss(trigger));
    for (auto &[addr, level] : issuer.issued)
        EXPECT_EQ(pageNumber(addr), pageNumber(trigger));
}

TEST(Bop, RandomTrafficDisablesPrefetching)
{
    BopConfig config;
    config.badScore = 3;
    BopPrefetcher prefetcher(config);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    // Pseudo-random addresses: no offset ever scores.
    std::uint64_t state = 12345;
    for (int i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        prefetcher.operate(miss((state >> 20) << blockShift));
        FillInfo fill;
        fill.addr = (state >> 20) << blockShift;
        prefetcher.fill(fill);
        issuer.issued.clear();
    }
    EXPECT_FALSE(prefetcher.prefetchEnabled());
}

TEST(Ampm, DetectsForwardStrideAfterTwoConfirmations)
{
    AmpmPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{7} << 30;
    prefetcher.operate(miss(page + 0 * blockSize));
    prefetcher.operate(miss(page + 2 * blockSize));
    issuer.issued.clear();
    prefetcher.operate(miss(page + 4 * blockSize));
    // l - k and l - 2k accessed for k = 2 -> prefetch l + k = block 6.
    bool found = false;
    for (auto &[addr, level] : issuer.issued)
        found |= addr == page + 6 * blockSize;
    EXPECT_TRUE(found);
}

TEST(Ampm, DetectsBackwardStride)
{
    AmpmPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{9} << 30;
    prefetcher.operate(miss(page + 40 * blockSize));
    prefetcher.operate(miss(page + 37 * blockSize));
    issuer.issued.clear();
    prefetcher.operate(miss(page + 34 * blockSize));
    bool found = false;
    for (auto &[addr, level] : issuer.issued)
        found |= addr == page + 31 * blockSize;
    EXPECT_TRUE(found);
}

TEST(Ampm, DoesNotPrefetchAlreadyAccessedLines)
{
    AmpmPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{11} << 30;
    // Touch the block that would be the prefetch target first.
    prefetcher.operate(miss(page + 6 * blockSize));
    prefetcher.operate(miss(page + 0 * blockSize));
    prefetcher.operate(miss(page + 2 * blockSize));
    issuer.issued.clear();
    prefetcher.operate(miss(page + 4 * blockSize));
    for (auto &[addr, level] : issuer.issued)
        EXPECT_NE(addr, page + 6 * blockSize);
}

TEST(Ampm, DegreeLimitsPrefetchesPerTrigger)
{
    AmpmConfig config;
    config.degree = 1;
    AmpmPrefetcher prefetcher(config);
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    const Addr page = Addr{13} << 30;
    // Dense accesses support multiple stride hypotheses.
    for (int block : {0, 1, 2, 3, 4, 5})
        prefetcher.operate(miss(page + Addr(block) * blockSize));
    // Last trigger may issue at most one prefetch.
    issuer.issued.clear();
    prefetcher.operate(miss(page + 6 * blockSize));
    EXPECT_LE(issuer.issued.size(), 1u);
}

/** Walk one page of a VLDP instance with the given delta sequence. */
void
walkVldp(VldpPrefetcher &vldp, Addr page,
         const std::vector<int> &deltas, int reps)
{
    int offset = 0;
    int step = 0;
    for (int i = 0; i < reps && offset < int(blocksPerPage); ++i) {
        OperateInfo info;
        info.addr = (page << pageShift) |
                    (Addr(unsigned(offset)) << blockShift);
        info.pc = 0x400100;
        vldp.operate(info);
        offset += deltas[std::size_t(step++) % deltas.size()];
    }
}

TEST(Vldp, LearnsConstantDelta)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    for (Addr page = 21000; page < 21006; ++page)
        walkVldp(vldp, page, {2}, 30);
    ASSERT_GT(issuer.issued.size(), 20u);
    // After training, the chained predictions follow the +2 stride.
    const Addr last = issuer.issued.back().first;
    EXPECT_EQ(pageOffset(last) % 2, 0u);
}

TEST(Vldp, LongerHistoryDisambiguatesAlternation)
{
    // Delta sequence {1, 3}: DPT-1 sees conflicting successors for
    // both deltas, DPT-2 resolves them exactly.
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    for (Addr page = 22000; page < 22010; ++page)
        walkVldp(vldp, page, {1, 3}, 30);

    // Replay a fresh page and check predictions follow the pattern:
    // offsets visited are 0,1,4,5,8,9,... so every prefetch target
    // must be congruent to 0 or 1 mod 4.
    issuer.issued.clear();
    walkVldp(vldp, 22999, {1, 3}, 30);
    ASSERT_GT(issuer.issued.size(), 5u);
    int conforming = 0;
    for (auto &[addr, fill] : issuer.issued) {
        const unsigned mod = pageOffset(addr) % 4;
        conforming += (mod == 0 || mod == 1) ? 1 : 0;
    }
    EXPECT_GT(conforming * 10, int(issuer.issued.size()) * 8)
        << conforming << " of " << issuer.issued.size();
}

TEST(Vldp, OptPredictsFirstAccessOfAPage)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    // Pages always start at offset 0 and first-step by +1.
    for (Addr page = 23000; page < 23008; ++page)
        walkVldp(vldp, page, {1}, 4);

    issuer.issued.clear();
    OperateInfo info;
    info.addr = Addr{23999} << pageShift; // offset 0, brand new page
    info.pc = 0x400100;
    vldp.operate(info);
    ASSERT_FALSE(issuer.issued.empty());
    EXPECT_EQ(issuer.issued[0].first,
              (Addr{23999} << pageShift) | blockSize);
}

TEST(Vldp, NeverPrefetchesOutsideThePage)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    for (Addr page = 24000; page < 24010; ++page)
        walkVldp(vldp, page, {7}, 12);
    for (auto &[addr, fill] : issuer.issued) {
        EXPECT_GE(pageNumber(addr), Addr{24000});
        EXPECT_LT(pageNumber(addr), Addr{24010});
    }
}

TEST(Vldp, RandomTrafficStaysQuiet)
{
    VldpPrefetcher vldp;
    MockIssuer issuer;
    vldp.attach(&issuer);
    std::uint64_t state = 777;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        OperateInfo info;
        info.addr = (Addr{25000} + (state >> 40) % 8) << pageShift |
                    (((state >> 20) % blocksPerPage) << blockShift);
        info.pc = 0x400100;
        vldp.operate(info);
    }
    // Random deltas give low-accuracy DPT entries; issue volume stays
    // well below one per access.
    EXPECT_LT(issuer.issued.size(), 2500u);
}

TEST(NoPrefetcher, IsSilent)
{
    NoPrefetcher prefetcher;
    MockIssuer issuer;
    prefetcher.attach(&issuer);
    prefetcher.operate(miss(0x10000));
    FillInfo fill;
    prefetcher.fill(fill);
    EXPECT_TRUE(issuer.issued.empty());
    EXPECT_EQ(prefetcher.name(), "none");
}

// ---- backend registry and spec grammar ------------------------------

TEST(Registry, ListsEveryBuiltinBackend)
{
    std::set<std::string> names;
    for (const BackendInfo &info : prefetcherBackends())
        names.insert(info.name);
    for (const char *expected :
         {"none", "next_line", "ip_stride", "bop", "da_ampm", "vldp",
          "spp", "spp_ppf", "pmp", "pythia"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(Registry, ParsesPlainAndComposedSpecs)
{
    PrefetcherSpec spec;
    std::string error;

    ASSERT_TRUE(tryParsePrefetcherSpec("pmp", spec, error)) << error;
    EXPECT_EQ(spec.base, "pmp");
    EXPECT_FALSE(spec.filtered);
    EXPECT_EQ(spec.canonical, "pmp");

    ASSERT_TRUE(tryParsePrefetcherSpec("pythia+ppf", spec, error))
        << error;
    EXPECT_EQ(spec.base, "pythia");
    EXPECT_TRUE(spec.filtered);
    EXPECT_EQ(spec.canonical, "pythia+ppf");

    // Legacy suffix spelling maps onto the same composition.
    ASSERT_TRUE(tryParsePrefetcherSpec("bop_ppf", spec, error))
        << error;
    EXPECT_EQ(spec.base, "bop");
    EXPECT_TRUE(spec.filtered);
    EXPECT_EQ(spec.canonical, "bop+ppf");
}

TEST(Registry, SppPlusPpfMeansTheTightIntegration)
{
    PrefetcherSpec spec;
    std::string error;
    ASSERT_TRUE(tryParsePrefetcherSpec("spp+ppf", spec, error))
        << error;
    EXPECT_EQ(spec.base, "spp_ppf");
    EXPECT_FALSE(spec.filtered);
}

TEST(Registry, RejectsDoubleFilterSuffix)
{
    // The old factory's suffix recursion accepted this.
    PrefetcherSpec spec;
    std::string error;
    EXPECT_FALSE(tryParsePrefetcherSpec("spp_ppf_ppf", spec, error));
    EXPECT_NE(error.find("double-filter"), std::string::npos) << error;
    EXPECT_NE(error.find("+ppf"), std::string::npos) << error;
}

TEST(Registry, RejectsDoubleFilterModifier)
{
    PrefetcherSpec spec;
    std::string error;
    EXPECT_FALSE(tryParsePrefetcherSpec("spp_ppf+ppf", spec, error));
    EXPECT_NE(error.find("double-filter"), std::string::npos) << error;
}

TEST(Registry, RejectsNoOpFilterSuffix)
{
    PrefetcherSpec spec;
    std::string error;
    EXPECT_FALSE(tryParsePrefetcherSpec("none_ppf", spec, error));
    EXPECT_NE(error.find("no-op"), std::string::npos) << error;
}

TEST(Registry, RejectsNoOpFilterModifier)
{
    PrefetcherSpec spec;
    std::string error;
    EXPECT_FALSE(tryParsePrefetcherSpec("none+ppf", spec, error));
    EXPECT_NE(error.find("no-op"), std::string::npos) << error;
}

TEST(Registry, RejectsUnknownModifier)
{
    PrefetcherSpec spec;
    std::string error;
    EXPECT_FALSE(tryParsePrefetcherSpec("bop+zpf", spec, error));
    EXPECT_NE(error.find("unknown prefetcher modifier"),
              std::string::npos)
        << error;
}

TEST(Registry, RejectsUnknownBackend)
{
    PrefetcherSpec spec;
    std::string error;
    EXPECT_FALSE(tryParsePrefetcherSpec("frobnicate", spec, error));
    EXPECT_NE(error.find("unknown prefetcher backend"),
              std::string::npos)
        << error;
    // Stripping is applied at most once, so the old recursive
    // "anything_ppf_ppf" path dead-ends on an unknown backend.
    EXPECT_FALSE(tryParsePrefetcherSpec("bop_ppf_ppf", spec, error));
    EXPECT_NE(error.find("unknown prefetcher backend"),
              std::string::npos)
        << error;
}

TEST(Registry, BuildsBackendsFromSpecs)
{
    const BackendConfigs configs;
    EXPECT_EQ(makePrefetcherFromSpec("pmp", configs)->name(), "pmp");
    EXPECT_EQ(makePrefetcherFromSpec("pythia", configs)->name(),
              "pythia");
    // The generic wrap names itself <base>_ppf, matching the legacy
    // report labels byte for byte.
    EXPECT_EQ(makePrefetcherFromSpec("pmp+ppf", configs)->name(),
              "pmp_ppf");
    EXPECT_EQ(makePrefetcherFromSpec("spp_ppf", configs)->name(),
              "spp_ppf");
}

// ---- PMP ------------------------------------------------------------

/** Touch @p offsets of @p page in order (PMP's learning stream). */
void
walkPmp(PmpPrefetcher &pmp, Addr page, const std::vector<unsigned> &offsets,
        Pc pc = 0x400100)
{
    for (const unsigned offset : offsets)
        pmp.operate(miss((page << pageShift) |
                             (Addr(offset) << blockShift),
                         pc));
}

TEST(Pmp, MergedPatternPredictsLearnedOffsets)
{
    PmpConfig config;
    config.atEntries = 1; // every promotion merges the previous region
    PmpPrefetcher pmp(config);
    MockIssuer issuer;
    pmp.attach(&issuer);

    // Eight regions sharing one trigger context (same PC, trigger
    // offset 10) and the same spatial pattern.
    for (Addr page = 0x30000; page < 0x30008; ++page)
        walkPmp(pmp, page, {10, 12, 14, 16});
    EXPECT_GE(pmp.pmpStats().merges, 5u);

    issuer.issued.clear();
    walkPmp(pmp, 0x31000, {10});
    ASSERT_EQ(issuer.issued.size(), 3u);
    const Addr base = Addr{0x31000} << pageShift;
    EXPECT_EQ(issuer.issued[0].first, base + 12 * blockSize);
    EXPECT_EQ(issuer.issued[1].first, base + 14 * blockSize);
    EXPECT_EQ(issuer.issued[2].first, base + 16 * blockSize);
    // Saturated counters clear the high-confidence bar: L2 fills.
    EXPECT_TRUE(issuer.issued[0].second);
}

TEST(Pmp, StaysWithinThePage)
{
    PmpConfig config;
    config.atEntries = 1;
    PmpPrefetcher pmp(config);
    MockIssuer issuer;
    pmp.attach(&issuer);
    // Patterns anchored near the end of the region.
    for (Addr page = 0x40000; page < 0x40010; ++page)
        walkPmp(pmp, page, {60, 61, 62, 63});
    for (auto &[addr, fill] : issuer.issued)
        EXPECT_GE(pageNumber(addr), Addr{0x40000});
    issuer.issued.clear();
    walkPmp(pmp, 0x41000, {60});
    for (auto &[addr, fill] : issuer.issued)
        EXPECT_EQ(pageNumber(addr), Addr{0x41000});
}

TEST(Pmp, DeterministicReplay)
{
    PmpPrefetcher a, b;
    MockIssuer issuer_a, issuer_b;
    a.attach(&issuer_a);
    b.attach(&issuer_b);
    std::uint64_t state = 99;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const Addr addr = ((Addr{0x50000} + (state >> 40) % 32)
                           << pageShift) |
                          (((state >> 20) % blocksPerPage)
                           << blockShift);
        const Pc pc = 0x400100 + (state % 4) * 4;
        a.operate(miss(addr, pc));
        b.operate(miss(addr, pc));
    }
    EXPECT_EQ(issuer_a.issued, issuer_b.issued);
}

TEST(Pmp, SnapshotRoundTripBitIdentity)
{
    PmpConfig config;
    config.atEntries = 4;
    PmpPrefetcher live(config), restored(config);
    MockIssuer issuer_live, issuer_restored;
    live.attach(&issuer_live);
    restored.attach(&issuer_restored);

    // Train the live instance mid-stream...
    for (Addr page = 0x60000; page < 0x60010; ++page)
        walkPmp(live, page, {5, 7, 9, 11});

    // ...snapshot it into the fresh instance...
    snapshot::Sink sink;
    live.serialize(sink);
    snapshot::Source src(sink.buffer().data(), sink.buffer().size());
    restored.deserialize(src);

    // ...and continue both on an identical tail: issue sequences and
    // re-serialized images must match bit for bit.
    issuer_live.issued.clear();
    for (Addr page = 0x61000; page < 0x61008; ++page) {
        walkPmp(live, page, {5, 7, 9, 11});
        walkPmp(restored, page, {5, 7, 9, 11});
    }
    EXPECT_EQ(issuer_live.issued, issuer_restored.issued);

    snapshot::Sink after_live, after_restored;
    live.serialize(after_live);
    restored.serialize(after_restored);
    EXPECT_EQ(after_live.buffer(), after_restored.buffer());
}

// ---- Pythia ---------------------------------------------------------

/** Sequential block stream: @p pages pages walked front to back. */
void
walkPythia(PythiaPrefetcher &pythia, Addr first_page, unsigned pages,
           unsigned blocks = 48)
{
    for (Addr page = first_page; page < first_page + pages; ++page) {
        for (unsigned block = 0; block < blocks; ++block) {
            pythia.operate(miss((page << pageShift) |
                                (Addr(block) << blockShift)));
        }
    }
}

TEST(Pythia, LearnsSequentialStreamViaRewards)
{
    PythiaConfig config;
    config.epsilonInverse = 0; // pure greedy: learning drives issue
    PythiaPrefetcher pythia(config);
    MockIssuer issuer;
    pythia.attach(&issuer);

    walkPythia(pythia, 0x70000, 40);

    // The no-prefetch action decays under its mild penalty, the +1
    // action earns accuracy rewards on this stream and takes over.
    EXPECT_GT(pythia.pythiaStats().issued, 100u);
    EXPECT_GT(pythia.pythiaStats().accurate, 50u);
    EXPECT_GT(pythia.pythiaStats().updates, 1000u);

    // Once trained, the greedy decision on the stream is +1 block.
    issuer.issued.clear();
    walkPythia(pythia, 0x71000, 2);
    ASSERT_GT(issuer.issued.size(), 10u);
    std::size_t next_block = 0;
    for (std::size_t i = 0; i + 1 < issuer.issued.size(); ++i) {
        if (issuer.issued[i + 1].first - issuer.issued[i].first ==
            blockSize)
            ++next_block;
    }
    EXPECT_GT(next_block * 10, issuer.issued.size() * 8);
}

TEST(Pythia, DeterministicSameSeedReplay)
{
    // Default config explores with the seeded RNG: two instances must
    // still replay bit-identically.
    PythiaPrefetcher a, b;
    MockIssuer issuer_a, issuer_b;
    a.attach(&issuer_a);
    b.attach(&issuer_b);
    std::uint64_t state = 4242;
    for (int i = 0; i < 8000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        // Mostly-sequential stream with random breaks: both the
        // greedy and the exploration paths get exercised.
        const Addr page = Addr{0x80000} + (state >> 48) % 8;
        const Addr block = (state >> 20) % blocksPerPage;
        a.operate(miss((page << pageShift) | (block << blockShift)));
        b.operate(miss((page << pageShift) | (block << blockShift)));
    }
    EXPECT_EQ(issuer_a.issued, issuer_b.issued);
    EXPECT_EQ(a.pythiaStats().explored, b.pythiaStats().explored);
}

TEST(Pythia, SnapshotRoundTripBitIdentity)
{
    PythiaPrefetcher live, restored;
    MockIssuer issuer_live, issuer_restored;
    live.attach(&issuer_live);
    restored.attach(&issuer_restored);

    walkPythia(live, 0x90000, 20);

    snapshot::Sink sink;
    live.serialize(sink);
    snapshot::Source src(sink.buffer().data(), sink.buffer().size());
    restored.deserialize(src);

    // The tail exercises the RNG (exploration), the EQ and the
    // Q-updates: any unserialized state would diverge here.
    issuer_live.issued.clear();
    walkPythia(live, 0x91000, 10);
    walkPythia(restored, 0x91000, 10);
    EXPECT_EQ(issuer_live.issued, issuer_restored.issued);

    snapshot::Sink after_live, after_restored;
    live.serialize(after_live);
    restored.serialize(after_restored);
    EXPECT_EQ(after_live.buffer(), after_restored.buffer());
}

// ---- generic +ppf composition ---------------------------------------

TEST(GenericFilter, RejectsProposalsOnAdversarialTrace)
{
    // next_line+ppf on uniformly random accesses: every proposal is
    // junk, and the eviction feedback must teach the perceptron to
    // start dropping candidates the base prefetcher still emits.
    const BackendConfigs configs;
    auto wrapped = makePrefetcherFromSpec("next_line+ppf", configs);
    auto *filtered = dynamic_cast<ppf::FilteredPrefetcher *>(
        wrapped.get());
    ASSERT_NE(filtered, nullptr);
    MockIssuer issuer;
    wrapped->attach(&issuer);

    std::uint64_t state = 31337;
    for (int i = 0; i < 6000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const Addr addr = ((Addr{0xA0000} + (state >> 40) % 512)
                           << pageShift) |
                          (((state >> 20) % blocksPerPage)
                           << blockShift);
        wrapped->operate(miss(addr));
        // Every accepted prefetch fills, then dies unused: the
        // pollution feedback PPF trains on.
        for (auto &[pf_addr, level] : issuer.issued) {
            FillInfo fill;
            fill.addr = pf_addr;
            fill.wasPrefetch = true;
            wrapped->fill(fill);
            FillInfo evict;
            evict.addr = pf_addr + pageSize;
            evict.evictedValid = true;
            evict.evictedAddr = pf_addr;
            evict.evictedUnusedPrefetch = true;
            wrapped->fill(evict);
        }
        issuer.issued.clear();
    }
    const ppf::PpfStats &stats = filtered->filter().ppfStats();
    EXPECT_GT(stats.rejected, 0u);
    EXPECT_GT(stats.trainUselessEvict, 0u);
    // The filter must be doing real work, not blanket-rejecting from
    // the start: some candidates were accepted too.
    EXPECT_GT(stats.acceptedL2 + stats.acceptedLlc, 0u);
}

} // namespace
} // namespace pfsim::prefetch
