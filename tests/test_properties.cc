/**
 * @file
 * Parameterised property tests: invariants that must hold across the
 * configuration space, swept with TEST_P — cache geometry, MSHR
 * pressure, DRAM bandwidth monotonicity, SPP pattern families and PPF
 * feature-mask ablations.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "cache/cache.hh"
#include "core/ppf.hh"
#include "dram/dram.hh"
#include "prefetch/spp.hh"
#include "sim/runner.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"
#include "workloads/registry.hh"

namespace pfsim
{
namespace
{

// ------------------------------------------------ cache geometry sweep

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

/** A trivial backing store that answers instantly. */
class InstantMemory : public cache::MemoryLevel
{
  public:
    bool
    addRead(const cache::Request &req) override
    {
        if (req.ret != nullptr)
            pending.push_back(req);
        return true;
    }

    bool addWrite(const cache::Request &) override { return true; }

    bool
    addPrefetch(const cache::Request &req) override
    {
        return addRead(req);
    }

    void
    tick(Cycle now) override
    {
        for (const auto &req : pending)
            req.ret->returnData(req, now);
        pending.clear();
    }

    std::vector<cache::Request> pending;
};

TEST_P(CacheGeometry, RandomTrafficPreservesInvariants)
{
    const auto [sets, ways] = GetParam();
    cache::CacheConfig config;
    config.sets = sets;
    config.ways = ways;
    config.mshrs = 8;
    InstantMemory memory;
    cache::Cache cache(config, &memory);

    Rng rng(sets * 131 + ways);
    Cycle now = 0;
    for (int i = 0; i < 4000; ++i) {
        cache::Request req;
        req.addr = rng.below(1u << 16) << blockShift;
        req.type = rng.chance(0.3) ? cache::AccessType::Rfo
                                   : cache::AccessType::Load;
        cache.addRead(req);
        ++now;
        cache.tick(now);
        memory.tick(now);
    }

    EXPECT_LE(cache.validBlockCount(),
              std::uint64_t(sets) * ways);
    const auto &stats = cache.stats();
    EXPECT_LE(stats.loadHit, stats.loadAccess);
    EXPECT_LE(stats.rfoHit, stats.rfoAccess);
    EXPECT_EQ(stats.demandAccesses(),
              stats.loadAccess + stats.rfoAccess);
    // Every processed access either hit or eventually filled: once the
    // queues drain, the valid count is positive.
    EXPECT_GT(cache.validBlockCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(1u, 8u),
                      std::make_tuple(16u, 1u),
                      std::make_tuple(16u, 4u),
                      std::make_tuple(64u, 8u),
                      std::make_tuple(256u, 16u)));

// -------------------------------------------------- MSHR pressure sweep

class MshrPressure : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MshrPressure, AllRequestsEventuallyComplete)
{
    const unsigned mshrs = GetParam();
    cache::CacheConfig config;
    config.sets = 64;
    config.ways = 8;
    config.mshrs = mshrs;
    config.rqSize = 64;

    dram::Dram memory{dram::DramConfig{}};
    cache::Cache cache(config, &memory);

    struct Counter : cache::Requestor
    {
        void
        returnData(const cache::Request &, Cycle) override
        {
            ++count;
        }
        unsigned count = 0;
    } counter;

    // Burst of 48 distinct misses through however few MSHRs.
    unsigned accepted = 0;
    Cycle now = 0;
    for (unsigned i = 0; i < 48; ++i) {
        cache::Request req;
        req.addr = (Addr{1} << 24) + Addr(i) * blockSize;
        req.ret = &counter;
        req.token = i;
        if (cache.addRead(req))
            ++accepted;
    }
    for (int i = 0; i < 40000 && counter.count < accepted; ++i) {
        ++now;
        cache.tick(now);
        memory.tick(now);
    }
    EXPECT_EQ(counter.count, accepted);
    EXPECT_GE(accepted, std::min(48u, config.rqSize));
}

INSTANTIATE_TEST_SUITE_P(Pressure, MshrPressure,
                         ::testing::Values(1u, 2u, 4u, 16u, 64u));

// ------------------------------------------- DRAM bandwidth monotonicity

class DramBandwidth : public ::testing::TestWithParam<double>
{
};

TEST_P(DramBandwidth, StreamFinishTimeScalesWithBandwidth)
{
    const double gbs = GetParam();
    dram::DramConfig config;
    config.setBandwidthGBs(gbs);
    dram::Dram dram(config);

    struct Last : cache::Requestor
    {
        void
        returnData(const cache::Request &, Cycle now) override
        {
            last = now;
            ++count;
        }
        Cycle last = 0;
        unsigned count = 0;
    } sink;

    const unsigned n = 24;
    for (unsigned i = 0; i < n; ++i) {
        cache::Request req;
        req.addr = Addr(i) * blockSize;
        req.ret = &sink;
        ASSERT_TRUE(dram.addRead(req));
    }
    Cycle now = 0;
    while (sink.count < n && now < 100000)
        dram.tick(++now);
    ASSERT_EQ(sink.count, n);

    // The stream cannot finish faster than the data bus allows.
    EXPECT_GE(sink.last, Cycle(n) * config.transferCycles);
    // And it should finish within a small constant of the bus bound.
    EXPECT_LE(sink.last, Cycle(n) * config.transferCycles +
                             config.rowConflictLatency + 128);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, DramBandwidth,
                         ::testing::Values(3.2, 6.4, 12.8, 25.6));

// -------------------------------------------------- SPP pattern families

class SppPattern
    : public ::testing::TestWithParam<std::vector<int>>
{
};

TEST_P(SppPattern, PrefetchesStayInPageAndFollowTraining)
{
    const std::vector<int> deltas = GetParam();

    struct Recorder : prefetch::PrefetchIssuer
    {
        bool
        issuePrefetch(Addr addr, bool) override
        {
            issued.push_back(blockAlign(addr));
            return true;
        }
        std::vector<Addr> issued;
    } recorder;

    prefetch::SppPrefetcher spp;
    spp.attach(&recorder);

    Addr page = Addr{123456};
    int offset = 0;
    std::size_t step = 0;
    for (int i = 0; i < 3000; ++i) {
        prefetch::OperateInfo info;
        info.addr = (page << pageShift) |
                    (Addr(unsigned(offset)) << blockShift);
        info.pc = 0x400100;
        spp.operate(info);
        offset += deltas[step++ % deltas.size()];
        if (offset < 0 || offset >= int(blocksPerPage)) {
            ++page;
            offset = std::max(0, offset - int(blocksPerPage));
            if (offset >= int(blocksPerPage))
                offset = 0;
            step = 0;
        }
    }

    EXPECT_GT(recorder.issued.size(), 50u)
        << "SPP failed to learn a repeating delta pattern";
    // Prefetch targets are always block-aligned, in tracked pages.
    for (Addr addr : recorder.issued)
        EXPECT_EQ(addr % blockSize, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DeltaFamilies, SppPattern,
    ::testing::Values(std::vector<int>{1}, std::vector<int>{2},
                      std::vector<int>{1, 2},
                      std::vector<int>{1, 2, 1, 3},
                      std::vector<int>{3, -1},
                      std::vector<int>{1, 1, 2, 1, 1, 3}));

// ------------------------------------------------ PPF feature-mask sweep

class PpfMask : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PpfMask, DecisionsAlwaysConsistentWithSums)
{
    const std::uint32_t mask = GetParam();
    ppf::PpfConfig config;
    config.featureMask = mask;
    ppf::Ppf filter(config);

    Rng rng(mask * 7 + 3);
    for (int i = 0; i < 1500; ++i) {
        prefetch::SppCandidate candidate;
        candidate.addr = (rng.below(1 << 20)) << blockShift;
        candidate.triggerAddr = (rng.below(1 << 20)) << blockShift;
        candidate.pc = 0x400000 + rng.below(64) * 4;
        candidate.depth = int(rng.below(12)) + 1;
        candidate.delta = int(rng.range(-8, 8));
        candidate.confidence = int(rng.below(101));
        candidate.signature = std::uint32_t(rng.below(4096));

        const int sum = filter.inferenceSum(candidate);
        EXPECT_GE(sum, filter.weights().minSum());
        EXPECT_LE(sum, filter.weights().maxSum());

        const auto decision = filter.test(candidate);
        if (sum >= config.tauHi)
            EXPECT_EQ(decision,
                      prefetch::SppFilter::Decision::FillL2);
        else if (sum >= config.tauLo)
            EXPECT_EQ(decision,
                      prefetch::SppFilter::Decision::FillLlc);
        else
            EXPECT_EQ(decision, prefetch::SppFilter::Decision::Drop);

        // Random feedback keeps the weights moving.
        if (rng.chance(0.5)) {
            filter.notifyIssued(candidate, true);
            filter.onDemand(candidate.addr, candidate.pc);
        } else {
            filter.onUselessEviction(candidate.addr);
        }
    }

    const auto &stats = filter.ppfStats();
    EXPECT_EQ(stats.candidates,
              stats.acceptedL2 + stats.acceptedLlc + stats.rejected);
}

INSTANTIATE_TEST_SUITE_P(Masks, PpfMask,
                         ::testing::Values(0x1ffu, 0x001u, 0x100u,
                                           0x0aau, 0x155u, 0x00fu));

// -------------------------------------------- weight-width clamp sweep

class WeightWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WeightWidth, ClampBoundsRespected)
{
    const unsigned bits = GetParam();
    ppf::WeightTables tables(0x1ff, bits);
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    EXPECT_EQ(tables.weightMin(), lo);
    EXPECT_EQ(tables.weightMax(), hi);

    ppf::FeatureInput input;
    input.triggerAddr = 0x1234567890;
    input.pc = 0x400100;
    const auto idx = ppf::computeIndices(input);
    for (int i = 0; i < 64; ++i)
        tables.train(idx, true);
    EXPECT_EQ(tables.sum(idx), hi * int(ppf::numFeatures));
    for (int i = 0; i < 128; ++i)
        tables.train(idx, false);
    EXPECT_EQ(tables.sum(idx), lo * int(ppf::numFeatures));
}

INSTANTIATE_TEST_SUITE_P(Widths, WeightWidth,
                         ::testing::Values(2u, 3u, 4u, 5u));

// ----------------------------------- whole-system determinism per seed

class SeedDeterminism : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedDeterminism, IdenticalSeedsReplayIdentically)
{
    trace::SyntheticConfig config =
        workloads::findWorkload("657.xz_s-like").make();
    config.seed = GetParam();

    auto run_once = [&] {
        trace::SyntheticTrace trace(config);
        sim::System system(sim::SystemConfig::defaultConfig()
                               .withPrefetcher("spp_ppf"),
                           {&trace});
        system.runUntilRetired(30000);
        return std::make_tuple(system.now(),
                               system.l2(0).stats().demandMisses(),
                               system.l2(0).stats().pfIssued,
                               system.dram().stats().reads);
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminism,
                         ::testing::Values(1u, 42u, 9999u));

} // namespace
} // namespace pfsim
