/**
 * @file
 * Tests for the crash-isolated sweep service (sim/service): the
 * coordinator/worker frame protocol, the write-ahead campaign journal
 * with its fail-closed resume, the --shards/--worker spec parsers, and
 * end-to-end coordinator campaigns against real worker processes.
 *
 * This binary is its own worker: the coordinator tests exec
 * /proc/self/exe with --service-child=<mode>, and main() routes such
 * invocations into runServiceChild() instead of the gtest harness
 * (which is also why this target links gtest, not gtest_main).  Child
 * modes re-create the failure menagerie — a worker SIGKILLed mid-job,
 * a poison job that kills every host, a thrown job failure, a wedged
 * worker with muted heartbeats, a runaway job that never returns —
 * so every supervision path is exercised against real processes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "sim/parallel.hh"
#include "sim/runner.hh"
#include "sim/service/journal.hh"
#include "sim/service/protocol.hh"
#include "sim/service/service.hh"
#include "snapshot/serial.hh"

namespace pfsim
{
namespace
{

namespace svc = sim::service;

/** Absolute path of this test binary (the worker exec target). */
std::string
selfExe()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

/**
 * A campaign of n jobs where job i computes base + i*i into slots[i].
 * The identical builder runs in the coordinator (load hooks only) and
 * in the worker children (run + save), so slot values crossing the
 * pipe are directly checkable.  @p hook runs first inside each job —
 * the child modes hang their misbehaviour there.
 */
std::vector<sim::ShardJob>
makeCampaign(std::size_t n, std::uint64_t base,
             std::vector<std::uint64_t> &slots,
             std::function<void(std::size_t)> hook = {})
{
    std::vector<sim::ShardJob> jobs(n);
    for (std::size_t i = 0; i < n; ++i) {
        jobs[i].run = [&slots, i, base, hook] {
            if (hook)
                hook(i);
            slots[i] = base + i * i;
            sim::JobReport report;
            report.line = "job " + std::to_string(i);
            return report;
        };
        jobs[i].save = [&slots, i](snapshot::Sink &sink) {
            sink.u64(slots[i]);
        };
        jobs[i].load = [&slots, i](snapshot::Source &src) {
            slots[i] = src.u64();
        };
    }
    return jobs;
}

// ------------------------------------------------------- child modes

struct ChildOpts
{
    std::string mode;
    std::string worker;
    std::string marker;
    std::size_t njobs = 4;
    std::int64_t index = -1;
    unsigned heartbeat = 50;
};

/** True exactly once: the first caller creates the marker file. */
bool
firstVisit(const std::string &marker)
{
    if (marker.empty() || std::filesystem::exists(marker))
        return false;
    std::ofstream(marker) << "visited\n";
    return true;
}

} // namespace

/** Worker-mode entry: serve campaigns per --service-child=<mode>. */
int
runServiceChild(int argc, char **argv)
{
    ChildOpts opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (arg.rfind("--service-child=", 0) == 0)
            opt.mode = value("--service-child=");
        else if (arg.rfind("--worker=", 0) == 0)
            opt.worker = value("--worker=");
        else if (arg.rfind("--marker=", 0) == 0)
            opt.marker = value("--marker=");
        else if (arg.rfind("--njobs=", 0) == 0)
            opt.njobs = std::stoul(value("--njobs="));
        else if (arg.rfind("--index=", 0) == 0)
            opt.index = std::stol(value("--index="));
        else if (arg.rfind("--heartbeat=", 0) == 0)
            opt.heartbeat = unsigned(std::stoul(value("--heartbeat=")));
    }
    svc::enterWorkerMode(svc::parseWorkerSpec(opt.worker));

    sim::RunConfig run;
    run.shards = 1; // worker mode ignores the count
    run.shardHeartbeatMs = opt.heartbeat;
    run.journalPath.clear();

    auto hook = [&opt](std::size_t i) {
        if (opt.index < 0 || std::int64_t(i) != opt.index)
            return;
        if (opt.mode == "poison") {
            svc::crashWorkerForTest();
        } else if (opt.mode == "crash-once") {
            if (firstVisit(opt.marker))
                svc::crashWorkerForTest();
        } else if (opt.mode == "throw") {
            throw std::runtime_error("injected worker exception\n"
                                     "with a second line");
        } else if (opt.mode == "throw-once") {
            if (firstVisit(opt.marker))
                throw std::runtime_error("injected flaky failure");
        } else if (opt.mode == "wedge") {
            if (firstVisit(opt.marker)) {
                svc::muteHeartbeatsForTest(true);
                std::this_thread::sleep_for(std::chrono::seconds(30));
            }
        } else if (opt.mode == "sleep") {
            std::this_thread::sleep_for(std::chrono::seconds(30));
        }
    };

    std::vector<std::uint64_t> slots(opt.njobs, 0);
    auto jobs = makeCampaign(opt.njobs, 1, slots, hook);
    sim::runJobsFleet(jobs, run, "svc");

    if (opt.mode == "two-phase") {
        // A worker that reaches this point was spawned for campaign 2
        // and had campaign 1 replayed into its slots; phase 2's values
        // derive from them, so wrong replay state is observable.
        const std::uint64_t base2 =
            std::accumulate(slots.begin(), slots.end(),
                            std::uint64_t(7));
        std::vector<std::uint64_t> slots2(opt.njobs, 0);
        auto phase2 = makeCampaign(opt.njobs, base2, slots2);
        sim::runJobsFleet(phase2, run, "svc2");
    }
    return 0;
}

namespace
{

// ------------------------------------------------------ spec parsing

TEST(ShardSpec, ParsesCountAndDefaults)
{
    const svc::ShardSpec spec = svc::parseShardSpec("4");
    EXPECT_EQ(spec.shards, 4u);
    EXPECT_EQ(spec.respawn, 3u);
    EXPECT_EQ(spec.heartbeatMs, 250u);
}

TEST(ShardSpec, ParsesRespawnAndHeartbeat)
{
    const svc::ShardSpec spec =
        svc::parseShardSpec("8,respawn=1,heartbeat=10");
    EXPECT_EQ(spec.shards, 8u);
    EXPECT_EQ(spec.respawn, 1u);
    EXPECT_EQ(spec.heartbeatMs, 10u);
}

TEST(ShardSpecDeath, RejectsEmptySpec)
{
    EXPECT_EXIT(svc::parseShardSpec(""),
                testing::ExitedWithCode(1), "--shards=4");
}

TEST(ShardSpecDeath, RejectsZeroShards)
{
    EXPECT_EXIT(svc::parseShardSpec("0"),
                testing::ExitedWithCode(1), "must be >= 1");
}

TEST(ShardSpecDeath, RejectsMalformedCount)
{
    EXPECT_EXIT(svc::parseShardSpec("many"),
                testing::ExitedWithCode(1), "expects an integer");
}

TEST(ShardSpecDeath, RejectsUnknownKey)
{
    EXPECT_EXIT(svc::parseShardSpec("2,retries=5"),
                testing::ExitedWithCode(1), "unknown key");
}

TEST(ShardSpecDeath, RejectsBareKey)
{
    EXPECT_EXIT(svc::parseShardSpec("2,respawn"),
                testing::ExitedWithCode(1), "expected key=value");
}

TEST(WorkerSpec, ParsesPipeFds)
{
    const svc::WorkerSpec spec = svc::parseWorkerSpec("3,4");
    EXPECT_EQ(spec.readFd, 3);
    EXPECT_EQ(spec.writeFd, 4);
}

TEST(WorkerSpecDeath, RejectsMissingComma)
{
    EXPECT_EXIT(svc::parseWorkerSpec("3"),
                testing::ExitedWithCode(1), "R,W pipe fds");
}

TEST(WorkerSpecDeath, RejectsExtraField)
{
    EXPECT_EXIT(svc::parseWorkerSpec("3,4,5"),
                testing::ExitedWithCode(1), "R,W pipe fds");
}

// --------------------------------------------------- frame protocol

TEST(Protocol, FramesRoundTripOverPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    std::vector<std::uint8_t> small = {1, 2, 3};
    std::vector<std::uint8_t> big(4096);
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = std::uint8_t(i * 7);

    svc::writeFrame(fds[1], svc::MsgType::Heartbeat, {});
    svc::writeFrame(fds[1], svc::MsgType::RunJob, small);
    svc::writeFrame(fds[1], svc::MsgType::JobDone, big);
    ::close(fds[1]);

    svc::Frame frame;
    ASSERT_TRUE(svc::readFrame(fds[0], frame));
    EXPECT_EQ(frame.type, svc::MsgType::Heartbeat);
    EXPECT_TRUE(frame.payload.empty());
    ASSERT_TRUE(svc::readFrame(fds[0], frame));
    EXPECT_EQ(frame.type, svc::MsgType::RunJob);
    EXPECT_EQ(frame.payload, small);
    ASSERT_TRUE(svc::readFrame(fds[0], frame));
    EXPECT_EQ(frame.type, svc::MsgType::JobDone);
    EXPECT_EQ(frame.payload, big);
    // Writer gone at a frame boundary: clean end-of-stream.
    EXPECT_FALSE(svc::readFrame(fds[0], frame));
    ::close(fds[0]);
}

TEST(Protocol, CorruptedPayloadFailsTheCrc)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    svc::writeFrame(fds[1], svc::MsgType::RunJob, {10, 20, 30, 40});
    ::close(fds[1]);

    std::vector<std::uint8_t> bytes(13 + 4);
    ASSERT_EQ(::read(fds[0], bytes.data(), bytes.size()),
              ssize_t(bytes.size()));
    ::close(fds[0]);
    bytes[14] ^= 0x40; // second payload byte

    int corrupt[2];
    ASSERT_EQ(::pipe(corrupt), 0);
    ASSERT_EQ(::write(corrupt[1], bytes.data(), bytes.size()),
              ssize_t(bytes.size()));
    ::close(corrupt[1]);
    svc::Frame frame;
    EXPECT_THROW(svc::readFrame(corrupt[0], frame), svc::ServiceError);
    ::close(corrupt[0]);
}

TEST(Protocol, EofMidFrameIsAProtocolError)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    svc::writeFrame(fds[1], svc::MsgType::JobDone, {1, 2, 3, 4, 5, 6});

    std::vector<std::uint8_t> bytes(13 + 6);
    ASSERT_EQ(::read(fds[0], bytes.data(), bytes.size()),
              ssize_t(bytes.size()));
    ::close(fds[1]);

    int torn[2];
    ASSERT_EQ(::pipe(torn), 0);
    // Header plus half the payload, then the writer dies.
    ASSERT_EQ(::write(torn[1], bytes.data(), 16), 16);
    ::close(torn[1]);
    svc::Frame frame;
    EXPECT_THROW(svc::readFrame(torn[0], frame), svc::ServiceError);
    ::close(torn[0]);
    ::close(fds[0]);
}

TEST(Protocol, BadMagicThrows)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::uint8_t junk[13] = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_EQ(::write(fds[1], junk, sizeof(junk)),
              ssize_t(sizeof(junk)));
    ::close(fds[1]);
    svc::Frame frame;
    EXPECT_THROW(svc::readFrame(fds[0], frame), svc::ServiceError);
    ::close(fds[0]);
}

// ------------------------------------------------------ the journal

class JournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        char tmpl[] = "/tmp/pfsim-journal-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        path_ = dir_ + "/campaign.journal";
    }

    void TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    /** A journal with one campaign header and three job records. */
    void writeReference(std::uint64_t identity = 0x1234)
    {
        svc::Journal journal = svc::Journal::create(path_, identity);
        svc::JournalCampaign campaign;
        campaign.ordinal = 1;
        campaign.jobCount = 3;
        campaign.tag = "run";
        journal.appendCampaign(campaign);
        for (std::uint32_t i = 0; i < 3; ++i) {
            svc::JournalRecord record;
            record.campaign = 1;
            record.index = i;
            record.ok = true;
            record.attempts = i + 1;
            record.line = "job " + std::to_string(i);
            record.payload = {std::uint8_t(i), 0x55};
            journal.appendRecord(record);
        }
    }

    std::string dir_;
    std::string path_;
};

TEST_F(JournalTest, RoundTripsCampaignsAndRecords)
{
    writeReference();
    svc::JournalContents contents;
    svc::Journal journal = svc::Journal::resume(path_, 0x1234, contents);
    ASSERT_EQ(contents.campaigns.size(), 1u);
    EXPECT_EQ(contents.campaigns[0].ordinal, 1u);
    EXPECT_EQ(contents.campaigns[0].jobCount, 3u);
    EXPECT_EQ(contents.campaigns[0].tag, "run");
    ASSERT_EQ(contents.records.size(), 3u);
    for (std::uint32_t i = 0; i < 3; ++i) {
        EXPECT_EQ(contents.records[i].index, i);
        EXPECT_EQ(contents.records[i].attempts, i + 1);
        EXPECT_TRUE(contents.records[i].ok);
        EXPECT_EQ(contents.records[i].line,
                  "job " + std::to_string(i));
        EXPECT_EQ(contents.records[i].payload,
                  (std::vector<std::uint8_t>{std::uint8_t(i), 0x55}));
    }
}

TEST_F(JournalTest, ResumedHandleAppends)
{
    writeReference();
    {
        svc::JournalContents contents;
        svc::Journal journal =
            svc::Journal::resume(path_, 0x1234, contents);
        svc::JournalRecord extra;
        extra.campaign = 1;
        extra.index = 9;
        extra.line = "late row";
        journal.appendRecord(extra);
    }
    svc::JournalContents contents;
    svc::Journal journal = svc::Journal::resume(path_, 0x1234, contents);
    ASSERT_EQ(contents.records.size(), 4u);
    EXPECT_EQ(contents.records[3].index, 9u);
}

TEST_F(JournalTest, RejectsIdentitySkew)
{
    writeReference(0x1234);
    svc::JournalContents contents;
    EXPECT_THROW(svc::Journal::resume(path_, 0x4321, contents),
                 svc::ServiceError);
}

TEST_F(JournalTest, RejectsTruncatedTail)
{
    writeReference();
    const auto size = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, size - 1);
    svc::JournalContents contents;
    EXPECT_THROW(svc::Journal::resume(path_, 0x1234, contents),
                 svc::ServiceError);
}

TEST_F(JournalTest, RejectsCrcCorruption)
{
    writeReference();
    std::fstream file(path_, std::ios::in | std::ios::out |
                                 std::ios::binary);
    const auto size = std::filesystem::file_size(path_);
    file.seekg(std::streamoff(size) - 6);
    char byte = 0;
    file.read(&byte, 1);
    byte = char(byte ^ 0x01);
    file.seekp(std::streamoff(size) - 6);
    file.write(&byte, 1);
    file.close();
    svc::JournalContents contents;
    EXPECT_THROW(svc::Journal::resume(path_, 0x1234, contents),
                 svc::ServiceError);
}

TEST_F(JournalTest, RejectsForeignFile)
{
    std::ofstream(path_) << "this is not a journal at all\n";
    svc::JournalContents contents;
    EXPECT_THROW(svc::Journal::resume(path_, 0x1234, contents),
                 svc::ServiceError);
}

// -------------------------------------- coordinator over real workers

class ServiceCampaignTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        svc::resetSessionForTest();
        char tmpl[] = "/tmp/pfsim-service-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        run_.shards = 2;
        run_.shardHeartbeatMs = 50;
        run_.journalPath.clear();
    }

    void TearDown() override
    {
        std::filesystem::remove_all(dir_);
        svc::resetSessionForTest();
    }

    /** Point the coordinator at this binary in --service-child mode. */
    void useChild(const std::string &mode, std::size_t njobs,
                  std::int64_t index = -1, bool marker = false)
    {
        std::vector<std::string> command = {
            selfExe(),
            "--service-child=" + mode,
            "--njobs=" + std::to_string(njobs),
            "--heartbeat=" + std::to_string(run_.shardHeartbeatMs),
        };
        if (index >= 0)
            command.push_back("--index=" + std::to_string(index));
        if (marker)
            command.push_back("--marker=" + dir_ + "/marker");
        svc::setWorkerCommandForTest(command);
    }

    void expectSlots(const std::vector<std::uint64_t> &slots,
                     std::uint64_t base)
    {
        for (std::size_t i = 0; i < slots.size(); ++i)
            EXPECT_EQ(slots[i], base + i * i) << "slot " << i;
    }

    std::string dir_;
    sim::RunConfig run_;
};

TEST_F(ServiceCampaignTest, CampaignAssemblesSlotsBySubmissionIndex)
{
    const std::size_t n = 6;
    useChild("normal", n);
    std::vector<std::uint64_t> slots(n, 0);
    auto jobs = makeCampaign(n, 1, slots);
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc");
    expectSlots(slots, 1);
    ASSERT_EQ(report.outcomes.size(), n);
    for (const sim::JobOutcome &outcome : report.outcomes) {
        EXPECT_TRUE(outcome.ok);
        EXPECT_EQ(outcome.attempts, 1u);
    }
    EXPECT_EQ(report.degraded(), 0u);
    EXPECT_EQ(report.throughput.jobs, 2u);
}

TEST_F(ServiceCampaignTest, ReplayConvergesWorkersOfLaterCampaigns)
{
    const std::size_t n = 4;
    useChild("two-phase", n);
    std::vector<std::uint64_t> slots(n, 0);
    auto phase1 = makeCampaign(n, 1, slots);
    sim::runJobsFleet(phase1, run_, "svc");
    expectSlots(slots, 1);

    // Campaign 2's workers are fresh processes that had campaign 1
    // replayed; their phase-2 base is derived from the replayed slots.
    const std::uint64_t base2 = std::accumulate(
        slots.begin(), slots.end(), std::uint64_t(7));
    std::vector<std::uint64_t> slots2(n, 0);
    auto phase2 = makeCampaign(n, base2, slots2);
    sim::runJobsFleet(phase2, run_, "svc2");
    expectSlots(slots2, base2);
}

TEST_F(ServiceCampaignTest, WorkerCrashRequeuesWithoutConsumingAttempt)
{
    const std::size_t n = 5;
    useChild("crash-once", n, 2, true);
    std::vector<std::uint64_t> slots(n, 0);
    auto jobs = makeCampaign(n, 1, slots);
    // Default policy: a worker crash is not a job failure, so the
    // campaign completes without any FleetPolicy budget at all.
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc");
    expectSlots(slots, 1);
    EXPECT_TRUE(report.outcomes[2].ok);
    EXPECT_EQ(report.outcomes[2].attempts, 1u);
}

TEST_F(ServiceCampaignTest, PoisonJobIsQuarantinedAsDegraded)
{
    const std::size_t n = 5;
    useChild("poison", n, 1);
    run_.shardRespawn = 1; // two crashes, then quarantine
    sim::FleetPolicy policy;
    policy.degradeOnFailure = true;
    std::vector<std::uint64_t> slots(n, 0);
    auto jobs = makeCampaign(n, 1, slots);
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc", policy);
    EXPECT_FALSE(report.outcomes[1].ok);
    EXPECT_NE(report.outcomes[1].error.find("worker crash"),
              std::string::npos);
    EXPECT_EQ(report.degraded(), 1u);
    for (std::size_t i = 0; i < n; ++i) {
        if (i == 1)
            continue;
        EXPECT_TRUE(report.outcomes[i].ok) << "job " << i;
        EXPECT_EQ(slots[i], 1 + i * i) << "job " << i;
    }
}

TEST_F(ServiceCampaignTest, ThrownFailureConsumesAttemptsAndDegrades)
{
    const std::size_t n = 4;
    useChild("throw", n, 3);
    sim::FleetPolicy policy;
    policy.maxRetries = 1;
    policy.degradeOnFailure = true;
    std::vector<std::uint64_t> slots(n, 0);
    auto jobs = makeCampaign(n, 1, slots);
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc", policy);
    EXPECT_FALSE(report.outcomes[3].ok);
    EXPECT_EQ(report.outcomes[3].attempts, 2u);
    // Only the first line of the thrown message crosses the pipe.
    EXPECT_EQ(report.outcomes[3].error, "injected worker exception");
    EXPECT_EQ(report.degraded(), 1u);
}

TEST_F(ServiceCampaignTest, FlakyThrowRecoversAfterRetry)
{
    const std::size_t n = 4;
    useChild("throw-once", n, 0, true);
    sim::FleetPolicy policy;
    policy.maxRetries = 2;
    policy.degradeOnFailure = true;
    std::vector<std::uint64_t> slots(n, 0);
    auto jobs = makeCampaign(n, 1, slots);
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc", policy);
    expectSlots(slots, 1);
    EXPECT_TRUE(report.outcomes[0].ok);
    EXPECT_EQ(report.outcomes[0].attempts, 2u);
    EXPECT_TRUE(report.outcomes[0].recoveredAfterRetry());
    EXPECT_EQ(report.recovered(), 1u);
}

TEST_F(ServiceCampaignTest, HeartbeatWatchdogKillsWedgedWorker)
{
    const std::size_t n = 4;
    useChild("wedge", n, 1, true);
    std::vector<std::uint64_t> slots(n, 0);
    auto jobs = makeCampaign(n, 1, slots);
    // The wedged worker mutes its heartbeats and sleeps for 30s; the
    // watchdog must kill it after ~1s of staleness and the re-run
    // completes the campaign well before the sleep would.
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc");
    expectSlots(slots, 1);
    EXPECT_TRUE(report.outcomes[1].ok);
    EXPECT_EQ(report.outcomes[1].attempts, 1u);
}

TEST_F(ServiceCampaignTest, HostTimeoutWatchdogDegradesRunawayJob)
{
    const std::size_t n = 3;
    useChild("sleep", n, 2);
    run_.hostTimeoutSeconds = 0.2;
    sim::FleetPolicy policy;
    policy.degradeOnFailure = true;
    std::vector<std::uint64_t> slots(n, 0);
    auto jobs = makeCampaign(n, 1, slots);
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc", policy);
    EXPECT_FALSE(report.outcomes[2].ok);
    EXPECT_NE(report.outcomes[2].error.find("hostTimeoutSeconds"),
              std::string::npos);
    EXPECT_EQ(report.degraded(), 1u);
    EXPECT_TRUE(report.outcomes[0].ok);
    EXPECT_TRUE(report.outcomes[1].ok);
}

// ------------------------------------------------- resumed campaigns

class ServiceResumeTest : public ServiceCampaignTest
{
  protected:
    void SetUp() override
    {
        ServiceCampaignTest::SetUp();
        run_.journalPath = dir_ + "/campaign.journal";
    }

    /** Run one flaky campaign to completion, journaled. */
    void runReferenceCampaign(std::vector<std::uint64_t> &slots)
    {
        useChild("throw-once", slots.size(), 1, true);
        sim::FleetPolicy policy;
        policy.maxRetries = 2;
        auto jobs = makeCampaign(slots.size(), 1, slots);
        const sim::FleetReport report =
            sim::runJobsFleet(jobs, run_, "svc", policy);
        expectSlots(slots, 1);
        ASSERT_EQ(report.outcomes[1].attempts, 2u);
    }

    /**
     * Frame offsets inside the journal: byte offset of every record
     * frame, so tests can truncate or corrupt at exact boundaries.
     */
    std::vector<std::uintmax_t> frameOffsets()
    {
        std::ifstream file(run_.journalPath, std::ios::binary);
        std::vector<char> bytes(
            (std::istreambuf_iterator<char>(file)),
            std::istreambuf_iterator<char>());
        std::vector<std::uintmax_t> offsets;
        std::uintmax_t at = 16; // magic + version + identity
        while (at < bytes.size()) {
            offsets.push_back(at);
            std::uint32_t length = 0;
            for (unsigned b = 0; b < 4; ++b) {
                length |= std::uint32_t(std::uint8_t(
                              bytes[std::size_t(at) + 1 + b]))
                          << (8u * b);
            }
            at += std::uintmax_t(9) + length;
        }
        return offsets;
    }
};

TEST_F(ServiceResumeTest, ResumeReplaysEveryFinalizedRow)
{
    const std::size_t n = 5;
    std::vector<std::uint64_t> slots(n, 0);
    runReferenceCampaign(slots);

    svc::resetSessionForTest();
    useChild("throw-once", n, 1, true);
    run_.resumeCampaign = true;
    sim::FleetPolicy policy;
    policy.maxRetries = 2;
    std::vector<std::uint64_t> resumed(n, 0);
    auto jobs = makeCampaign(n, 1, resumed);
    const sim::FleetReport report =
        sim::runJobsFleet(jobs, run_, "svc", policy);
    expectSlots(resumed, 1);
    // attempts==2 came out of the journal: the flaky job was NOT
    // re-run (its marker file still exists, so a re-run would have
    // succeeded first try and reported attempts==1).
    EXPECT_EQ(report.outcomes[1].attempts, 2u);
    EXPECT_TRUE(report.outcomes[1].ok);
}

TEST_F(ServiceResumeTest, PartialJournalRunsOnlyMissingRows)
{
    const std::size_t n = 5;
    std::vector<std::uint64_t> slots(n, 0);
    runReferenceCampaign(slots);

    // Drop the last finalized row cleanly at its frame boundary.
    const std::vector<std::uintmax_t> offsets = frameOffsets();
    ASSERT_GE(offsets.size(), 2u);
    std::filesystem::resize_file(run_.journalPath, offsets.back());

    svc::resetSessionForTest();
    useChild("throw-once", n, 1, true);
    run_.resumeCampaign = true;
    sim::FleetPolicy policy;
    policy.maxRetries = 2;
    std::vector<std::uint64_t> resumed(n, 0);
    auto jobs = makeCampaign(n, 1, resumed);
    sim::runJobsFleet(jobs, run_, "svc", policy);
    expectSlots(resumed, 1);
}

TEST_F(ServiceResumeTest, CorruptJournalRestartsFromScratch)
{
    const std::size_t n = 4;
    std::vector<std::uint64_t> slots(n, 0);
    runReferenceCampaign(slots);

    // Flip a payload byte of the last record: the CRC check must
    // reject the whole journal, and the campaign re-runs fully with
    // correct results instead of splicing in the corrupt slot.
    const std::vector<std::uintmax_t> offsets = frameOffsets();
    ASSERT_FALSE(offsets.empty());
    std::fstream file(run_.journalPath,
                      std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff at = std::streamoff(offsets.back()) + 16;
    file.seekg(at);
    char byte = 0;
    file.read(&byte, 1);
    byte = char(byte ^ 0x80);
    file.seekp(at);
    file.write(&byte, 1);
    file.close();

    svc::resetSessionForTest();
    useChild("throw-once", n, 1, true);
    run_.resumeCampaign = true;
    sim::FleetPolicy policy;
    policy.maxRetries = 2;
    std::vector<std::uint64_t> resumed(n, 0);
    auto jobs = makeCampaign(n, 1, resumed);
    sim::runJobsFleet(jobs, run_, "svc", policy);
    expectSlots(resumed, 1);
}

} // namespace
} // namespace pfsim

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--service-child=", 0) == 0)
            return pfsim::runServiceChild(argc, argv);
    }
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
