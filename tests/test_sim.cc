/**
 * @file
 * Unit tests for the system layer: configuration variants, prefetcher
 * factory, system assembly, determinism and the runner plumbing.
 */

#include <gtest/gtest.h>

#include "check/system_audit.hh"
#include "fault/fault.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "snapshot/snapshot.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"
#include "workloads/mixes.hh"
#include "workloads/registry.hh"

namespace pfsim::sim
{
namespace
{

TEST(SystemConfig, DefaultMatchesPaperTable1)
{
    const SystemConfig config = SystemConfig::defaultConfig();
    EXPECT_EQ(config.cores, 1u);
    EXPECT_EQ(config.l1i.capacityBytes(), 32u * 1024u);
    EXPECT_EQ(config.l1d.capacityBytes(), 32u * 1024u);
    EXPECT_EQ(config.l2.capacityBytes(), 512u * 1024u);
    EXPECT_EQ(config.llc.capacityBytes(), 2u * 1024u * 1024u);
    EXPECT_EQ(config.dram.transferCycles, 20u); // 12.8 GB/s at 4 GHz
    EXPECT_EQ(config.core.branchPredictor, "perceptron");
}

TEST(SystemConfig, LlcScalesWithCores)
{
    EXPECT_EQ(SystemConfig::defaultConfig(4).llc.capacityBytes(),
              8u * 1024u * 1024u);
    EXPECT_EQ(SystemConfig::defaultConfig(8).llc.capacityBytes(),
              16u * 1024u * 1024u);
}

TEST(SystemConfig, Section52Variants)
{
    EXPECT_EQ(SystemConfig::smallLlc().llc.capacityBytes(),
              512u * 1024u);
    EXPECT_EQ(SystemConfig::lowBandwidth().dram.transferCycles, 80u);
}

TEST(SystemConfig, WithPrefetcherOnlyChangesPrefetcher)
{
    const SystemConfig base = SystemConfig::defaultConfig();
    const SystemConfig with = base.withPrefetcher("spp");
    EXPECT_EQ(with.prefetcher, "spp");
    EXPECT_EQ(with.llc.sets, base.llc.sets);
    EXPECT_EQ(base.prefetcher, "none");
}

TEST(PrefetcherFactory, BuildsEveryKnownName)
{
    for (const char *name : {"none", "next_line", "ip_stride", "bop",
                             "da_ampm", "vldp", "spp", "spp_ppf",
                             "bop_ppf", "next_line_ppf",
                             "da_ampm_ppf", "ip_stride_ppf",
                             "vldp_ppf"}) {
        SystemConfig config = SystemConfig::defaultConfig();
        config.prefetcher = name;
        auto prefetcher = makePrefetcher(config);
        ASSERT_NE(prefetcher, nullptr);
        EXPECT_EQ(prefetcher->name(), name);
    }
}

TEST(PrefetcherFactoryDeath, UnknownNameIsFatal)
{
    SystemConfig config = SystemConfig::defaultConfig();
    config.prefetcher = "teleporting";
    EXPECT_EXIT(makePrefetcher(config), testing::ExitedWithCode(1),
                "unknown prefetcher");
}

TEST(System, RunsEveryPrefetcherWithoutDeadlock)
{
    for (const char *name : {"none", "next_line", "ip_stride", "bop",
                             "da_ampm", "spp", "spp_ppf"}) {
        trace::SyntheticTrace trace(
            workloads::findWorkload("603.bwaves_s-like").make());
        System system(
            SystemConfig::defaultConfig().withPrefetcher(name),
            {&trace});
        system.runUntilRetired(20000);
        EXPECT_GE(system.core(0).retired(), 20000u) << name;
    }
}

TEST(System, ResetStatsClearsEveryBlock)
{
    trace::SyntheticTrace trace(
        workloads::findWorkload("603.bwaves_s-like").make());
    System system(SystemConfig::defaultConfig(), {&trace});
    system.runUntilRetired(20000);
    system.resetStats();
    EXPECT_EQ(system.core(0).retired(), 0u);
    EXPECT_EQ(system.l2(0).stats().loadAccess, 0u);
    EXPECT_EQ(system.llc().stats().loadAccess, 0u);
    EXPECT_EQ(system.dram().stats().reads, 0u);
}

TEST(SystemDeath, SourceCountMustMatchCores)
{
    trace::SyntheticTrace trace(
        workloads::findWorkload("603.bwaves_s-like").make());
    SystemConfig config = SystemConfig::defaultConfig(2);
    EXPECT_EXIT(System(config, {&trace}), testing::ExitedWithCode(1),
                "one trace source per core");
}

TEST(Runner, DeterministicAcrossRuns)
{
    RunConfig run;
    run.warmupInstructions = 20000;
    run.simInstructions = 60000;
    const SystemConfig config =
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const auto &workload = workloads::findWorkload("603.bwaves_s-like");

    const RunResult a = runSingleCore(config, workload, run);
    const RunResult b = runSingleCore(config, workload, run);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.totalPf(), b.totalPf());
    EXPECT_EQ(a.goodPf(), b.goodPf());
    EXPECT_EQ(a.l2.demandMisses(), b.l2.demandMisses());
}

TEST(Runner, MeasuredRegionHasRequestedLength)
{
    RunConfig run;
    run.warmupInstructions = 10000;
    run.simInstructions = 50000;
    const RunResult result = runSingleCore(
        SystemConfig::defaultConfig(),
        workloads::findWorkload("638.imagick_s-like"), run);
    EXPECT_GE(result.core.instructions, run.simInstructions);
    // Over-run is bounded by the retire width of the last cycle.
    EXPECT_LE(result.core.instructions, run.simInstructions + 8);
}

TEST(Runner, ResultInvariants)
{
    RunConfig run;
    run.warmupInstructions = 20000;
    run.simInstructions = 60000;
    const RunResult result = runSingleCore(
        SystemConfig::defaultConfig().withPrefetcher("spp"),
        workloads::findWorkload("603.bwaves_s-like"), run);

    EXPECT_GT(result.ipc, 0.0);
    EXPECT_LE(result.accuracy(), 1.0);
    EXPECT_GE(result.accuracy(), 0.0);
    EXPECT_LE(result.l2.demandHits(), result.l2.demandAccesses());
    EXPECT_GT(result.spp.triggers, 0u);
    EXPECT_EQ(result.prefetcher, "spp");
    EXPECT_EQ(result.workload, "603.bwaves_s-like");
}

TEST(Runner, SppStatsOnlyForSppFamilies)
{
    RunConfig run;
    run.warmupInstructions = 5000;
    run.simInstructions = 20000;
    const RunResult bop = runSingleCore(
        SystemConfig::defaultConfig().withPrefetcher("bop"),
        workloads::findWorkload("603.bwaves_s-like"), run);
    EXPECT_EQ(bop.spp.triggers, 0u);
    EXPECT_EQ(bop.ppf.candidates, 0u);

    const RunResult ppf = runSingleCore(
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf"),
        workloads::findWorkload("603.bwaves_s-like"), run);
    EXPECT_GT(ppf.spp.triggers, 0u);
    EXPECT_GT(ppf.ppf.candidates, 0u);
}

TEST(Multicore, TwoCoreMixRunsAndMeasuresBothCores)
{
    SystemConfig config = SystemConfig::defaultConfig(2);
    workloads::Mix mix = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("638.imagick_s-like"),
    };
    RunConfig run;
    run.warmupInstructions = 10000;
    run.simInstructions = 40000;
    const MixResult result = runMix(config, mix, run);
    ASSERT_EQ(result.ipc.size(), 2u);
    EXPECT_GT(result.ipc[0], 0.0);
    EXPECT_GT(result.ipc[1], 0.0);
    EXPECT_EQ(result.workloads[0], "603.bwaves_s-like");
}

TEST(Multicore, IsolatedCacheMemoises)
{
    IsolatedIpcCache cache;
    SystemConfig config = SystemConfig::defaultConfig();
    RunConfig run;
    run.warmupInstructions = 5000;
    run.simInstructions = 20000;
    const auto &workload = workloads::findWorkload("638.imagick_s-like");
    const double first = cache.get(config, workload, run);
    const double second = cache.get(config, workload, run);
    EXPECT_DOUBLE_EQ(first, second);
    EXPECT_GT(first, 0.0);
}

TEST(Experiment, PaperLineupOrder)
{
    const auto &lineup = paperPrefetchers();
    ASSERT_EQ(lineup.size(), 4u);
    EXPECT_EQ(lineup[0], "bop");
    EXPECT_EQ(lineup[1], "da_ampm");
    EXPECT_EQ(lineup[2], "spp");
    EXPECT_EQ(lineup[3], "spp_ppf");
}

TEST(Experiment, SweepComputesSpeedups)
{
    RunConfig run;
    run.warmupInstructions = 5000;
    run.simInstructions = 20000;
    const auto rows = sweepPrefetchers(
        SystemConfig::defaultConfig(), {"spp"},
        {workloads::findWorkload("638.imagick_s-like")}, run);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_GT(rows[0].speedup("spp"), 0.5);
    EXPECT_LT(rows[0].speedup("spp"), 2.0);
    EXPECT_GT(geomeanSpeedup(rows, "spp"), 0.0);
}

// ------------------------------------------------------------ FastPath
//
// The kernel fast path (System::step idle-cycle skipping) must be
// observationally invisible: every statistic, on every workload shape,
// has to come out bit-identical to the naive one-cycle() loop.

void
expectSameCoreStats(const cpu::CoreStats &a, const cpu::CoreStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.robFullStalls, b.robFullStalls);
    EXPECT_EQ(a.lqFullStalls, b.lqFullStalls);
    EXPECT_EQ(a.sqFullStalls, b.sqFullStalls);
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    expectSameCoreStats(a.core, b.core);
    EXPECT_EQ(a.l2.loadAccess, b.l2.loadAccess);
    EXPECT_EQ(a.l2.loadHit, b.l2.loadHit);
    EXPECT_EQ(a.l2.pfIssued, b.l2.pfIssued);
    EXPECT_EQ(a.l2.pfUseful, b.l2.pfUseful);
    EXPECT_EQ(a.l2.pfLate, b.l2.pfLate);
    EXPECT_EQ(a.llc.loadAccess, b.llc.loadAccess);
    EXPECT_EQ(a.llc.pfUseful, b.llc.pfUseful);
    EXPECT_EQ(a.dram.reads, b.dram.reads);
    EXPECT_EQ(a.dram.writes, b.dram.writes);
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits);
    EXPECT_EQ(a.dram.rowMisses, b.dram.rowMisses);
    EXPECT_EQ(a.dram.busBusyCycles, b.dram.busBusyCycles);
    EXPECT_EQ(a.dram.readLatencySum, b.dram.readLatencySum);
}

TEST(FastPath, SingleCoreStatsIdentical)
{
    RunConfig run;
    run.warmupInstructions = 20000;
    run.simInstructions = 60000;
    const SystemConfig config =
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const auto &workload = workloads::findWorkload("605.mcf_s-like");

    run.fastPath = FastPathMode::Off;
    const RunResult naive = runSingleCore(config, workload, run);
    for (const FastPathMode mode :
         {FastPathMode::Skip, FastPathMode::Wheel}) {
        run.fastPath = mode;
        const RunResult fast = runSingleCore(config, workload, run);
        expectSameRun(naive, fast);
    }
}

TEST(FastPath, MulticoreStatsIdentical)
{
    RunConfig run;
    run.warmupInstructions = 5000;
    run.simInstructions = 20000;
    const SystemConfig config =
        SystemConfig::defaultConfig(2).withPrefetcher("spp_ppf");
    const workloads::Mix mix = {
        workloads::findWorkload("605.mcf_s-like"),
        workloads::findWorkload("619.lbm_s-like")};

    run.fastPath = FastPathMode::Off;
    const MixResult naive = runMix(config, mix, run);
    for (const FastPathMode mode :
         {FastPathMode::Skip, FastPathMode::Wheel}) {
        run.fastPath = mode;
        const MixResult fast = runMix(config, mix, run);

        ASSERT_EQ(naive.ipc.size(), fast.ipc.size());
        for (std::size_t i = 0; i < naive.ipc.size(); ++i)
            EXPECT_DOUBLE_EQ(naive.ipc[i], fast.ipc[i]);
        EXPECT_EQ(naive.llc.loadAccess, fast.llc.loadAccess);
        EXPECT_EQ(naive.llc.pfUseful, fast.llc.pfUseful);
        EXPECT_EQ(naive.dram.reads, fast.dram.reads);
        EXPECT_EQ(naive.dram.readLatencySum, fast.dram.readLatencySum);
    }
}

TEST(FastPath, FaultCampaignStatsIdentical)
{
    // Every injector advances its own RNG per decision, so identical
    // fault counters on/off prove the skip never swallowed an event.
    const fault::FaultPlan plan = fault::FaultPlan::parse(
        "weights:rate=0.0005,burst=2;spp:rate=0.0005;"
        "dram:drop=0.01,delay=0.02,extra=300;"
        "mshr:reserve=4,period=4000,duty=800");
    RunConfig run;
    run.warmupInstructions = 10000;
    run.simInstructions = 40000;
    run.faults = &plan;
    run.faultSeed = 7;
    const SystemConfig config =
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const auto &workload = workloads::findWorkload("605.mcf_s-like");

    run.fastPath = FastPathMode::Off;
    const RunResult naive = runSingleCore(config, workload, run);
    for (const FastPathMode mode :
         {FastPathMode::Skip, FastPathMode::Wheel}) {
        run.fastPath = mode;
        const RunResult fast = runSingleCore(config, workload, run);

        expectSameRun(naive, fast);
        EXPECT_EQ(naive.faults.weightFlips, fast.faults.weightFlips);
        EXPECT_EQ(naive.faults.weightFlipsRecovered,
                  fast.faults.weightFlipsRecovered);
    }
}

TEST(FastPath, AuditCadenceIdentical)
{
    // The audit must fire on exactly the naive loop's boundaries even
    // when the kernel jumps over them — regression for the audit-as-
    // event clause in System::nextEventCycle().
    const SystemConfig config =
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const auto &workload = workloads::findWorkload("605.mcf_s-like");

    auto run_once = [&](FastPathMode mode) {
        trace::SyntheticTrace trace(workload.make());
        System system(config, {&trace});
        system.setFastPath(mode);
        check::attachSystemAuditors(system, 5000);
        system.runUntilRetired(30000);
        return std::pair<Cycle, std::uint64_t>(
            system.now(), system.audit().auditsRun());
    };

    const auto naive = run_once(FastPathMode::Off);
    const auto skip = run_once(FastPathMode::Skip);
    const auto wheel = run_once(FastPathMode::Wheel);
    EXPECT_EQ(naive.first, skip.first);
    EXPECT_EQ(naive.second, skip.second);
    EXPECT_EQ(naive.first, wheel.first);
    EXPECT_EQ(naive.second, wheel.second);
    EXPECT_GT(wheel.second, 0u);
}

// ---------------------------------------------------------- WheelFuzz
//
// Randomized cross-checks of the nextEventCycle()/TickWaker contract.
// Every component promises its nextEventCycle() never over-promises
// (claims idleness while work exists), and the wheel's wakeups must
// cover every cross-component state change.  A violation of either is
// invisible on any single hand-picked workload, so these tests draw
// run *shapes* — core counts, audit cadences, fault campaigns, run
// lengths, host step cadences — from a seeded stream and require
// bit-identical statistics and byte-identical snapshots against the
// naive loop on every draw.

TEST(WheelFuzz, RandomRunShapesStatsIdentical)
{
    Rng rng(20260808);
    const char *pool[] = {"605.mcf_s-like", "619.lbm_s-like"};
    for (int trial = 0; trial < 6; ++trial) {
        RunConfig run;
        run.warmupInstructions = 500 + rng.below(3000);
        run.simInstructions = 4000 + rng.below(12000);
        if (rng.below(2) == 1)
            run.auditInterval = 500 + rng.below(4000);

        if (rng.below(2) == 1) {
            // 4-core mix; also pins the satellite fix that fleet
            // cycles land in MixResult::throughput in every mode.
            const SystemConfig config =
                SystemConfig::defaultConfig(4).withPrefetcher(
                    "spp_ppf");
            workloads::Mix mix;
            for (int i = 0; i < 4; ++i)
                mix.push_back(
                    workloads::findWorkload(pool[rng.below(2)]));
            run.fastPath = FastPathMode::Off;
            const MixResult naive = runMix(config, mix, run);
            EXPECT_GT(naive.throughput.cycles, 0u);
            for (const FastPathMode mode :
                 {FastPathMode::Skip, FastPathMode::Wheel}) {
                run.fastPath = mode;
                const MixResult fast = runMix(config, mix, run);
                ASSERT_EQ(naive.ipc.size(), fast.ipc.size());
                for (std::size_t i = 0; i < naive.ipc.size(); ++i)
                    EXPECT_DOUBLE_EQ(naive.ipc[i], fast.ipc[i])
                        << "trial " << trial;
                EXPECT_EQ(naive.llc.loadAccess, fast.llc.loadAccess);
                EXPECT_EQ(naive.dram.reads, fast.dram.reads);
                EXPECT_EQ(naive.dram.readLatencySum,
                          fast.dram.readLatencySum);
                EXPECT_EQ(naive.throughput.cycles,
                          fast.throughput.cycles)
                    << "trial " << trial;
            }
        } else {
            const SystemConfig config =
                SystemConfig::defaultConfig().withPrefetcher(
                    "spp_ppf");
            const auto &workload =
                workloads::findWorkload(pool[rng.below(2)]);
            fault::FaultPlan plan;
            if (rng.below(2) == 1) {
                plan = fault::FaultPlan::parse(
                    "weights:rate=0.0005,burst=2;"
                    "dram:drop=0.01,delay=0.02,extra=300");
                run.faults = &plan;
                run.faultSeed = 1 + rng.below(1000);
            }
            run.fastPath = FastPathMode::Off;
            const RunResult naive =
                runSingleCore(config, workload, run);
            for (const FastPathMode mode :
                 {FastPathMode::Skip, FastPathMode::Wheel}) {
                run.fastPath = mode;
                const RunResult fast =
                    runSingleCore(config, workload, run);
                expectSameRun(naive, fast);
                EXPECT_EQ(naive.faults.weightFlips,
                          fast.faults.weightFlips)
                    << "trial " << trial;
                EXPECT_EQ(naive.throughput.cycles,
                          fast.throughput.cycles)
                    << "trial " << trial;
            }
        }
    }
}

TEST(WheelFuzz, RandomStepCadenceSnapshotsByteIdentical)
{
    // The wheel's schedule must be a pure function of simulated
    // state: however the host slices step() limits, a settled machine
    // serializes to exactly the bytes the naive loop produces at the
    // same retirement point.
    const SystemConfig config =
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const auto &workload = workloads::findWorkload("605.mcf_s-like");
    constexpr std::uint64_t digest = 42;

    auto image_after = [&](FastPathMode mode, std::uint64_t seed) {
        trace::SyntheticTrace trace(workload.make());
        System system(config, {&trace});
        system.setFastPath(mode);
        Rng steps(seed);
        while (system.core(0).retired() < 15000)
            system.step(system.now() + 1 + steps.below(4000));
        system.settle();
        snapshot::SimulationView view;
        view.system = &system;
        view.traces = {&trace};
        return std::pair<Cycle, std::vector<std::uint8_t>>(
            system.now(), snapshot::saveSimulation(view, digest));
    };

    const auto naive = image_after(FastPathMode::Off, 1);
    for (std::uint64_t seed = 2; seed < 5; ++seed) {
        for (const FastPathMode mode :
             {FastPathMode::Skip, FastPathMode::Wheel}) {
            const auto fast = image_after(mode, seed);
            EXPECT_EQ(naive.first, fast.first) << "seed " << seed;
            EXPECT_TRUE(naive.second == fast.second)
                << "snapshot bytes diverge, seed " << seed;
        }
    }
}

TEST(WheelFuzz, MidRunRestoreCrossesModes)
{
    // A settled checkpoint taken under any mode restores into any
    // other mode, and the continued run stays byte-identical: the
    // wheel is rebuilt from restored component state, never from the
    // image.
    const SystemConfig config =
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const auto &workload = workloads::findWorkload("605.mcf_s-like");
    constexpr std::uint64_t digest = 7;

    auto checkpoint = [&](FastPathMode mode) {
        trace::SyntheticTrace trace(workload.make());
        System system(config, {&trace});
        system.setFastPath(mode);
        system.runUntilRetired(8000);
        snapshot::SimulationView view;
        view.system = &system;
        view.traces = {&trace};
        return snapshot::saveSimulation(view, digest);
    };
    const std::vector<std::uint8_t> from_naive =
        checkpoint(FastPathMode::Off);
    const std::vector<std::uint8_t> from_wheel =
        checkpoint(FastPathMode::Wheel);
    EXPECT_TRUE(from_naive == from_wheel)
        << "settled checkpoints differ across modes";

    auto finish = [&](FastPathMode mode,
                      const std::vector<std::uint8_t> *image) {
        trace::SyntheticTrace trace(workload.make());
        System system(config, {&trace});
        system.setFastPath(mode);
        snapshot::SimulationView view;
        view.system = &system;
        view.traces = {&trace};
        if (image != nullptr)
            snapshot::restoreSimulation(*image, view, digest);
        system.runUntilRetired(20000);
        return snapshot::saveSimulation(view, digest);
    };
    const auto straight = finish(FastPathMode::Off, nullptr);
    EXPECT_TRUE(straight == finish(FastPathMode::Off, &from_naive));
    EXPECT_TRUE(straight == finish(FastPathMode::Wheel, &from_naive));
    EXPECT_TRUE(straight == finish(FastPathMode::Wheel, &from_wheel));
    EXPECT_TRUE(straight == finish(FastPathMode::Skip, &from_wheel));
}

} // namespace
} // namespace pfsim::sim
