/**
 * @file
 * Tests for the snapshot & warmup-reuse subsystem (src/snapshot): the
 * wire-format primitives, per-component round trips, whole-simulator
 * save/restore bit-identity, fail-closed rejection of damaged or
 * mismatched images, and the end-to-end checkpoint store — a restored
 * run must produce statistics identical to a straight-through run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "cache/mshr.hh"
#include "check/invariant.hh"
#include "check/snapshot_audit.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "snapshot/checkpoint_store.hh"
#include "snapshot/serial.hh"
#include "snapshot/snapshot.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace pfsim
{
namespace
{

// --- wire-format primitives -------------------------------------------

TEST(Serial, Crc32KnownVector)
{
    const std::uint8_t digits[] = {'1', '2', '3', '4', '5',
                                   '6', '7', '8', '9'};
    EXPECT_EQ(snapshot::crc32(digits, sizeof(digits)), 0xCBF43926u);
    EXPECT_EQ(snapshot::crc32(digits, 0), 0u);
}

TEST(Serial, PrimitivesRoundTrip)
{
    snapshot::Sink sink;
    sink.u8(0xab);
    sink.u16(0x1234);
    sink.u32(0xdeadbeef);
    sink.u64(0x0123456789abcdefull);
    sink.i32(-42);
    sink.i64(-1);
    sink.b(true);
    sink.b(false);
    sink.f64(-0.125);
    sink.str("warmup");
    sink.str("");

    snapshot::Source src(sink.buffer().data(), sink.buffer().size());
    EXPECT_EQ(src.u8(), 0xab);
    EXPECT_EQ(src.u16(), 0x1234);
    EXPECT_EQ(src.u32(), 0xdeadbeefu);
    EXPECT_EQ(src.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(src.i32(), -42);
    EXPECT_EQ(src.i64(), -1);
    EXPECT_TRUE(src.b());
    EXPECT_FALSE(src.b());
    EXPECT_EQ(src.f64(), -0.125);
    EXPECT_EQ(src.str(), "warmup");
    EXPECT_EQ(src.str(), "");
    EXPECT_TRUE(src.exhausted());
}

TEST(Serial, LittleEndianOnTheWire)
{
    snapshot::Sink sink;
    sink.u32(0x01020304u);
    ASSERT_EQ(sink.buffer().size(), 4u);
    EXPECT_EQ(sink.buffer()[0], 0x04);
    EXPECT_EQ(sink.buffer()[3], 0x01);
}

TEST(Serial, TruncatedReadThrows)
{
    const std::uint8_t two[] = {1, 2};
    snapshot::Source src(two, sizeof(two));
    EXPECT_THROW(src.u32(), snapshot::SnapshotError);
}

TEST(Serial, PointerRegistry)
{
    int a = 0, b = 0;
    snapshot::Sink sink;
    sink.registerPointer(&a);
    sink.registerPointer(&b);
    EXPECT_EQ(sink.pointerId(nullptr), 0u);
    EXPECT_EQ(sink.pointerId(&a), 1u);
    EXPECT_EQ(sink.pointerId(&b), 2u);
    int stranger = 0;
    EXPECT_THROW(sink.pointerId(&stranger), snapshot::SnapshotError);

    snapshot::Source src(nullptr, 0);
    src.registerPointer(&a);
    EXPECT_EQ(src.pointerAt(0), nullptr);
    EXPECT_EQ(src.pointerAt(1), &a);
    EXPECT_THROW(src.pointerAt(2), snapshot::SnapshotError);
}

// --- per-component round trips ----------------------------------------

// Mirror System::serialize's pointer registration so component images
// extracted from one system can be replayed into another.
void
registerPointers(snapshot::Sink &sink, sim::System &sys)
{
    for (unsigned i = 0; i < sys.coreCount(); ++i) {
        sink.registerPointer(
            static_cast<const cache::Requestor *>(&sys.core(i)));
        sink.registerPointer(
            static_cast<const cache::Requestor *>(&sys.l1i(i)));
        sink.registerPointer(
            static_cast<const cache::Requestor *>(&sys.l1d(i)));
        sink.registerPointer(
            static_cast<const cache::Requestor *>(&sys.l2(i)));
    }
    sink.registerPointer(
        static_cast<const cache::Requestor *>(&sys.llc()));
}

void
registerPointers(snapshot::Source &src, sim::System &sys)
{
    for (unsigned i = 0; i < sys.coreCount(); ++i) {
        src.registerPointer(
            static_cast<cache::Requestor *>(&sys.core(i)));
        src.registerPointer(
            static_cast<cache::Requestor *>(&sys.l1i(i)));
        src.registerPointer(
            static_cast<cache::Requestor *>(&sys.l1d(i)));
        src.registerPointer(
            static_cast<cache::Requestor *>(&sys.l2(i)));
    }
    src.registerPointer(static_cast<cache::Requestor *>(&sys.llc()));
}

TEST(ComponentRoundTrip, MshrFile)
{
    cache::MshrFile original(8);
    cache::MshrEntry *entry = original.allocate(0x1000, 7);
    ASSERT_NE(entry, nullptr);
    entry->prefetchOnly = true;
    entry->demandMergedIntoPrefetch = true;
    entry->pc = 0x4004;
    cache::Request waiter;
    waiter.addr = 0x1000;
    waiter.type = cache::AccessType::Rfo;
    waiter.token = 3;
    entry->waiters.push_back(waiter);
    original.allocate(0x2040, 9)->dirtyOnFill = true;

    snapshot::Sink first;
    original.serialize(first);

    cache::MshrFile restored(8);
    snapshot::Source src(first.buffer().data(), first.buffer().size());
    restored.deserialize(src);
    EXPECT_TRUE(src.exhausted());
    EXPECT_EQ(restored.used(), 2u);
    ASSERT_NE(restored.find(0x1000), nullptr);
    EXPECT_TRUE(restored.find(0x1000)->prefetchOnly);
    EXPECT_EQ(restored.find(0x1000)->waiters.size(), 1u);
    EXPECT_EQ(restored.find(0x1000)->waiters[0].token, 3u);

    snapshot::Sink second;
    restored.serialize(second);
    EXPECT_EQ(first.buffer(), second.buffer());
}

TEST(ComponentRoundTrip, MshrCapacityMismatchRejected)
{
    cache::MshrFile original(8);
    snapshot::Sink sink;
    original.serialize(sink);

    cache::MshrFile smaller(4);
    snapshot::Source src(sink.buffer().data(), sink.buffer().size());
    EXPECT_THROW(smaller.deserialize(src), snapshot::SnapshotError);
}

// Warm two same-config systems to different depths, then copy one
// component's state across and require the re-serialized image to be
// byte-identical to the original.
class WarmPair : public ::testing::Test
{
  protected:
    void
    warm(const std::string &prefetcher)
    {
        config_ = sim::SystemConfig::defaultConfig();
        config_.prefetcher = prefetcher;
        const workloads::Workload &workload =
            workloads::spec17Suite().front();
        traceA_ =
            std::make_unique<trace::SyntheticTrace>(workload.make());
        traceB_ =
            std::make_unique<trace::SyntheticTrace>(workload.make());
        sysA_ = std::make_unique<sim::System>(
            config_, std::vector<trace::TraceSource *>{traceA_.get()});
        sysB_ = std::make_unique<sim::System>(
            config_, std::vector<trace::TraceSource *>{traceB_.get()});
        sysA_->runUntilRetired(30000);
        sysB_->runUntilRetired(4000);
    }

    // Serialize a component of A, replay into B, re-serialize from B.
    template <typename Fn>
    void
    expectRoundTrip(Fn component)
    {
        snapshot::Sink first;
        registerPointers(first, *sysA_);
        component(*sysA_).serialize(first);

        snapshot::Source src(first.buffer().data(),
                             first.buffer().size());
        registerPointers(src, *sysB_);
        component(*sysB_).deserialize(src);
        EXPECT_TRUE(src.exhausted());

        snapshot::Sink second;
        registerPointers(second, *sysB_);
        component(*sysB_).serialize(second);
        EXPECT_EQ(first.buffer(), second.buffer());
    }

    sim::SystemConfig config_;
    std::unique_ptr<trace::SyntheticTrace> traceA_, traceB_;
    std::unique_ptr<sim::System> sysA_, sysB_;
};

TEST_F(WarmPair, Cache)
{
    warm("spp_ppf");
    expectRoundTrip([](sim::System &s) -> cache::Cache & {
        return s.l1d(0);
    });
    expectRoundTrip([](sim::System &s) -> cache::Cache & {
        return s.l2(0);
    });
    expectRoundTrip([](sim::System &s) -> cache::Cache & {
        return s.llc();
    });
}

TEST_F(WarmPair, SppAndPpf)
{
    warm("spp_ppf");
    expectRoundTrip([](sim::System &s) -> prefetch::Prefetcher & {
        return s.prefetcher(0);
    });
}

TEST_F(WarmPair, Dram)
{
    warm("spp");
    expectRoundTrip([](sim::System &s) -> dram::Dram & {
        return s.dram();
    });
}

TEST_F(WarmPair, Core)
{
    warm("spp");
    expectRoundTrip([](sim::System &s) -> cpu::Core & {
        return s.core(0);
    });
}

TEST(ComponentRoundTrip, TraceCursor)
{
    // Several pattern kinds plus a phase transition, so every cursor
    // field (phase position, RNG, per-pattern state, pending buffer)
    // is live when the snapshot is taken.
    trace::SyntheticConfig config;
    config.name = "cursor-test";
    config.seed = 99;
    trace::PhaseConfig phase1;
    phase1.length = 12000;
    trace::StreamConfig stream;
    stream.kind = trace::PatternKind::PageShuffle;
    phase1.streams.push_back(stream);
    stream.kind = trace::PatternKind::PointerChase;
    phase1.streams.push_back(stream);
    config.phases.push_back(phase1);
    trace::PhaseConfig phase2;
    trace::StreamConfig s2;
    s2.kind = trace::PatternKind::DeltaSeq;
    s2.breakProb = 0.05;
    phase2.streams.push_back(s2);
    s2.kind = trace::PatternKind::HotReuse;
    phase2.streams.push_back(s2);
    config.phases.push_back(phase2);

    trace::SyntheticTrace original(config);
    Instruction scratch;
    for (int i = 0; i < 20000; ++i)
        ASSERT_TRUE(original.next(scratch));

    snapshot::Sink sink;
    original.serialize(sink);
    trace::SyntheticTrace restored(config);
    snapshot::Source src(sink.buffer().data(), sink.buffer().size());
    restored.deserialize(src);
    EXPECT_TRUE(src.exhausted());

    // The restored cursor must continue the exact same stream.
    for (int i = 0; i < 8000; ++i) {
        Instruction a, b;
        ASSERT_TRUE(original.next(a));
        ASSERT_TRUE(restored.next(b));
        ASSERT_EQ(a.pc, b.pc) << "diverged at instruction " << i;
        ASSERT_EQ(a.loadAddr, b.loadAddr);
        ASSERT_EQ(a.storeAddr, b.storeAddr);
        ASSERT_EQ(a.isBranch, b.isBranch);
        ASSERT_EQ(a.branchTaken, b.branchTaken);
        ASSERT_EQ(a.dependsOnPrev, b.dependsOnPrev);
    }
}

// --- whole-simulator snapshots ----------------------------------------

snapshot::SimulationView
viewOf(sim::System &sys, trace::SyntheticTrace &trace)
{
    snapshot::SimulationView view;
    view.system = &sys;
    view.traces = {&trace};
    return view;
}

TEST(FullSnapshot, RestoredRunMatchesStraightThrough)
{
    const sim::SystemConfig config = [] {
        sim::SystemConfig c = sim::SystemConfig::defaultConfig();
        c.prefetcher = "spp_ppf";
        return c;
    }();
    const workloads::Workload &workload =
        workloads::spec17Suite().front();

    trace::SyntheticTrace traceA(workload.make());
    sim::System sysA(config,
                     std::vector<trace::TraceSource *>{&traceA});
    sysA.runUntilRetired(25000);
    const std::vector<std::uint8_t> image =
        snapshot::saveSimulation(viewOf(sysA, traceA), 0x5eed);

    // Restore into a *fresh* system and continue both side by side.
    trace::SyntheticTrace traceB(workload.make());
    sim::System sysB(config,
                     std::vector<trace::TraceSource *>{&traceB});
    snapshot::restoreSimulation(image, viewOf(sysB, traceB), 0x5eed);
    EXPECT_EQ(sysB.now(), sysA.now());

    sysA.resetStats();
    sysB.resetStats();
    sysA.runUntilRetired(25000);
    sysB.runUntilRetired(25000);
    EXPECT_EQ(sysA.now(), sysB.now());

    const cpu::CoreStats coreA = sysA.core(0).stats();
    const cpu::CoreStats coreB = sysB.core(0).stats();
    EXPECT_EQ(coreA.instructions, coreB.instructions);
    EXPECT_EQ(coreA.cycles, coreB.cycles);
    EXPECT_EQ(coreA.mispredicts, coreB.mispredicts);
    EXPECT_EQ(coreA.loads, coreB.loads);

    const cache::CacheStats l2A = sysA.l2(0).stats();
    const cache::CacheStats l2B = sysB.l2(0).stats();
    EXPECT_EQ(l2A.pfIssued, l2B.pfIssued);
    EXPECT_EQ(l2A.pfUseful, l2B.pfUseful);
    EXPECT_EQ(l2A.demandMisses(), l2B.demandMisses());
    EXPECT_EQ(sysA.llc().stats().demandMisses(),
              sysB.llc().stats().demandMisses());
    EXPECT_EQ(sysA.dram().stats().reads, sysB.dram().stats().reads);

    // And the post-run machine states are byte-identical.
    EXPECT_EQ(snapshot::saveSimulation(viewOf(sysA, traceA), 0x5eed),
              snapshot::saveSimulation(viewOf(sysB, traceB), 0x5eed));
}

class SavedImage : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        config_ = sim::SystemConfig::defaultConfig();
        config_.prefetcher = "spp";
        const workloads::Workload &workload =
            workloads::spec17Suite().front();
        trace_ =
            std::make_unique<trace::SyntheticTrace>(workload.make());
        sys_ = std::make_unique<sim::System>(
            config_, std::vector<trace::TraceSource *>{trace_.get()});
        sys_->runUntilRetired(8000);
        image_ = snapshot::saveSimulation(viewOf(*sys_, *trace_), 77);
    }

    void
    expectRejected(std::vector<std::uint8_t> bytes,
                   const std::string &needle,
                   std::uint64_t digest = 77)
    {
        try {
            snapshot::restoreSimulation(bytes, viewOf(*sys_, *trace_),
                                        digest);
            FAIL() << "restore accepted a damaged image";
        } catch (const snapshot::SnapshotError &err) {
            EXPECT_NE(std::string(err.what()).find(needle),
                      std::string::npos)
                << err.what();
        }
        std::string why;
        if (digest == 77) { // structural damage: the auditor agrees
            EXPECT_FALSE(check::auditSnapshotImage(bytes, why));
        }
    }

    sim::SystemConfig config_;
    std::unique_ptr<trace::SyntheticTrace> trace_;
    std::unique_ptr<sim::System> sys_;
    std::vector<std::uint8_t> image_;
};

TEST_F(SavedImage, AuditorAcceptsSoundImage)
{
    std::string why;
    EXPECT_TRUE(check::auditSnapshotImage(image_, why)) << why;

    check::SnapshotAuditor auditor("snapshot",
                                   viewOf(*sys_, *trace_));
    check::AuditContext ctx(sys_->now());
    auditor.audit(ctx);
    EXPECT_TRUE(ctx.clean());
}

TEST_F(SavedImage, BadMagicRejected)
{
    std::vector<std::uint8_t> bytes = image_;
    bytes[0] ^= 0xff;
    expectRejected(bytes, "bad magic");
}

TEST_F(SavedImage, VersionSkewRejected)
{
    std::vector<std::uint8_t> bytes = image_;
    bytes[4] += 1;
    expectRejected(bytes, "format version");
}

TEST_F(SavedImage, DigestMismatchRejected)
{
    try {
        snapshot::restoreSimulation(image_, viewOf(*sys_, *trace_),
                                    78);
        FAIL() << "restore accepted a foreign config digest";
    } catch (const snapshot::SnapshotError &err) {
        EXPECT_NE(std::string(err.what()).find("config digest"),
                  std::string::npos);
    }
}

TEST_F(SavedImage, FlippedPayloadByteRejected)
{
    std::vector<std::uint8_t> bytes = image_;
    bytes[bytes.size() / 2] ^= 0x01;
    expectRejected(bytes, "CRC");
}

TEST_F(SavedImage, TruncationRejected)
{
    std::vector<std::uint8_t> bytes = image_;
    bytes.resize(bytes.size() / 2);
    expectRejected(bytes, "truncated");
}

TEST_F(SavedImage, TrailingBytesRejected)
{
    std::vector<std::uint8_t> bytes = image_;
    bytes.push_back(0);
    expectRejected(bytes, "trailing bytes");
}

TEST_F(SavedImage, RejectionLeavesStateUntouched)
{
    std::vector<std::uint8_t> bytes = image_;
    bytes[bytes.size() - 5] ^= 0x40;
    expectRejected(bytes, "CRC");
    // The failed restore must not have perturbed the live machine.
    EXPECT_EQ(snapshot::saveSimulation(viewOf(*sys_, *trace_), 77),
              image_);
}

// --- digest sensitivity -----------------------------------------------

TEST(WarmupDigest, CoversWarmupRelevantKnobsOnly)
{
    const sim::SystemConfig config = sim::SystemConfig::defaultConfig();
    const workloads::Workload &workload =
        workloads::spec17Suite().front();
    const std::vector<trace::SyntheticConfig> traces = {
        workload.make()};
    const std::uint64_t base =
        snapshot::warmupDigest(config, 20000, traces, nullptr, 0);

    // Deterministic across calls.
    EXPECT_EQ(base,
              snapshot::warmupDigest(config, 20000, traces, nullptr, 0));

    // Sensitive to the warmup length, the prefetcher and the workload.
    EXPECT_NE(base,
              snapshot::warmupDigest(config, 20001, traces, nullptr, 0));
    EXPECT_NE(base,
              snapshot::warmupDigest(config.withPrefetcher("spp_ppf"),
                                     20000, traces, nullptr, 0));
    const std::vector<trace::SyntheticConfig> other = {
        workloads::spec17Suite().at(1).make()};
    EXPECT_NE(base,
              snapshot::warmupDigest(config, 20000, other, nullptr, 0));
}

// --- the checkpoint store and end-to-end warmup reuse -----------------

class CheckpointDir : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
            ("pfsim_snapshot_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST_F(CheckpointDir, StorePublishAndLoad)
{
    const snapshot::CheckpointStore store(dir_.string());
    const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};

    std::vector<std::uint8_t> loaded;
    EXPECT_FALSE(store.tryLoad("wl", 0xabc, loaded));

    store.publish("wl", 0xabc, bytes);
    ASSERT_TRUE(store.tryLoad("wl", 0xabc, loaded));
    EXPECT_EQ(loaded, bytes);

    // Other keys stay misses; hostile names cannot escape the dir
    // (path separators are sanitized out of the key).
    EXPECT_FALSE(store.tryLoad("wl", 0xabd, loaded));
    const std::filesystem::path hostile(
        store.pathFor("../../../etc/pw", 1));
    EXPECT_EQ(hostile.parent_path(), dir_);
    EXPECT_EQ(hostile.filename().string().find('/'),
              std::string::npos);
}

void
expectSameStats(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.core.instructions, b.core.instructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_EQ(a.l1d.demandMisses(), b.l1d.demandMisses());
    EXPECT_EQ(a.l2.pfIssued, b.l2.pfIssued);
    EXPECT_EQ(a.l2.pfUseful, b.l2.pfUseful);
    EXPECT_EQ(a.l2.demandMisses(), b.l2.demandMisses());
    EXPECT_EQ(a.llc.demandMisses(), b.llc.demandMisses());
    EXPECT_EQ(a.dram.reads, b.dram.reads);
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits);
    EXPECT_EQ(a.spp.issued, b.spp.issued);
    EXPECT_EQ(a.ppf.candidates, b.ppf.candidates);
    EXPECT_EQ(a.ppf.rejected, b.ppf.rejected);
}

TEST_F(CheckpointDir, RestoredRunStatsIdentical)
{
    sim::SystemConfig config = sim::SystemConfig::defaultConfig();
    config.prefetcher = "spp_ppf";
    const workloads::Workload &workload =
        workloads::spec17Suite().front();

    bool first_mode = true;
    for (const sim::FastPathMode fast_path :
         {sim::FastPathMode::Wheel, sim::FastPathMode::Skip,
          sim::FastPathMode::Off}) {
        sim::RunConfig run;
        run.warmupInstructions = 20000;
        run.simInstructions = 20000;
        run.fastPath = fast_path;
        const sim::RunResult plain =
            sim::runSingleCore(config, workload, run);

        run.checkpointDir = dir_.string();
        const sim::RunResult cold =
            sim::runSingleCore(config, workload, run);
        // The digest excludes fastPath (stats-invariant), so later
        // loop iterations hit the checkpoint the first one published
        // instead of missing cold.
        EXPECT_EQ(cold.throughput.checkpointMisses,
                  first_mode ? 1u : 0u);
        EXPECT_EQ(cold.throughput.checkpointHits, first_mode ? 0u : 1u);
        first_mode = false;

        const sim::RunResult warm =
            sim::runSingleCore(config, workload, run);
        EXPECT_EQ(warm.throughput.checkpointHits, 1u);
        EXPECT_GT(warm.throughput.warmupCyclesSaved, 0u);

        expectSameStats(plain, cold);
        expectSameStats(plain, warm);

        // --warmup-reuse=off bypasses a populated store.
        run.warmupReuse = false;
        const sim::RunResult bypassed =
            sim::runSingleCore(config, workload, run);
        EXPECT_EQ(bypassed.throughput.checkpointHits, 0u);
        expectSameStats(plain, bypassed);
    }
}

TEST_F(CheckpointDir, CorruptCheckpointFallsBackAndRepublishes)
{
    sim::SystemConfig config = sim::SystemConfig::defaultConfig();
    config.prefetcher = "spp";
    const workloads::Workload &workload =
        workloads::spec17Suite().front();
    sim::RunConfig run;
    run.warmupInstructions = 20000;
    run.simInstructions = 20000;
    run.checkpointDir = dir_.string();

    const sim::RunResult cold =
        sim::runSingleCore(config, workload, run);
    EXPECT_EQ(cold.throughput.checkpointMisses, 1u);

    // Damage the published image mid-payload.
    std::filesystem::path victim;
    for (const auto &entry : std::filesystem::directory_iterator(dir_))
        victim = entry.path();
    ASSERT_FALSE(victim.empty());
    {
        std::FILE *file = std::fopen(victim.c_str(), "r+b");
        ASSERT_NE(file, nullptr);
        std::fseek(file, 64, SEEK_SET);
        std::fputc(0xee, file);
        std::fclose(file);
    }

    // The damaged image is rejected, warmup re-simulated, and the
    // repaired checkpoint republished for the next run to hit.
    const sim::RunResult fallback =
        sim::runSingleCore(config, workload, run);
    EXPECT_EQ(fallback.throughput.checkpointMisses, 1u);
    EXPECT_EQ(fallback.throughput.checkpointHits, 0u);
    expectSameStats(cold, fallback);

    const sim::RunResult repaired =
        sim::runSingleCore(config, workload, run);
    EXPECT_EQ(repaired.throughput.checkpointHits, 1u);
    expectSameStats(cold, repaired);
}

TEST_F(CheckpointDir, SweepIdenticalAcrossJobsAndReuse)
{
    sim::SystemConfig config = sim::SystemConfig::defaultConfig();
    const std::vector<workloads::Workload> workload_set(
        workloads::spec17Suite().begin(),
        workloads::spec17Suite().begin() + 2);
    const std::vector<std::string> prefetchers = {"spp"};

    sim::RunConfig run;
    run.warmupInstructions = 20000;
    run.simInstructions = 20000;
    run.jobs = 1;
    const std::vector<sim::SweepRow> plain = sim::sweepPrefetchers(
        config, prefetchers, workload_set, run);

    run.checkpointDir = dir_.string();
    stats::FleetThroughput cold_fleet;
    const std::vector<sim::SweepRow> cold = sim::sweepPrefetchers(
        config, prefetchers, workload_set, run, &cold_fleet);
    EXPECT_EQ(cold_fleet.checkpointMisses, cold_fleet.runs);

    run.jobs = 4;
    stats::FleetThroughput warm_fleet;
    const std::vector<sim::SweepRow> warm = sim::sweepPrefetchers(
        config, prefetchers, workload_set, run, &warm_fleet);
    EXPECT_EQ(warm_fleet.checkpointHits, warm_fleet.runs);
    EXPECT_GT(warm_fleet.warmupCyclesSaved, 0u);
    EXPECT_NE(warm_fleet.summary().find("checkpoints"),
              std::string::npos);

    ASSERT_EQ(plain.size(), cold.size());
    ASSERT_EQ(plain.size(), warm.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        for (const char *pf : {"none", "spp"}) {
            expectSameStats(plain[i].results.at(pf),
                            cold[i].results.at(pf));
            expectSameStats(plain[i].results.at(pf),
                            warm[i].results.at(pf));
        }
        EXPECT_EQ(plain[i].speedup("spp"), warm[i].speedup("spp"));
    }
}

} // namespace
} // namespace pfsim
