/**
 * @file
 * Unit tests for the Signature Path Prefetcher: signature arithmetic,
 * pattern-table training, lookahead behaviour, fill-level thresholds,
 * GHR page-boundary bootstrapping and the filter hook.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "prefetch/spp.hh"

namespace pfsim::prefetch
{
namespace
{

class MockIssuer : public PrefetchIssuer
{
  public:
    bool
    issuePrefetch(Addr addr, bool fill_this_level) override
    {
        issued.push_back({blockAlign(addr), fill_this_level});
        return true;
    }

    std::vector<std::pair<Addr, bool>> issued;
};

/** A filter that records candidates and applies a fixed decision. */
class RecordingFilter : public SppFilter
{
  public:
    Decision
    test(const SppCandidate &candidate) override
    {
        candidates.push_back(candidate);
        return decision;
    }

    void
    notifyIssued(const SppCandidate &candidate, bool fill_l2) override
    {
        issued.push_back({candidate, fill_l2});
    }

    std::vector<SppCandidate> candidates;
    std::vector<std::pair<SppCandidate, bool>> issued;
    Decision decision = Decision::FillL2;
};

OperateInfo
access(Addr addr, Pc pc = 0x400100, bool hit_prefetched = false)
{
    OperateInfo info;
    info.addr = blockAlign(addr);
    info.pc = pc;
    info.cacheHit = hit_prefetched;
    info.hitPrefetched = hit_prefetched;
    return info;
}

/** Walk a page with a fixed block stride, starting at offset 0. */
void
walkPage(SppPrefetcher &spp, Addr page, int delta, int steps,
         bool mark_useful = false)
{
    int offset = 0;
    for (int i = 0; i < steps && offset < int(blocksPerPage); ++i) {
        spp.operate(access((page << pageShift) |
                               (Addr(unsigned(offset)) << blockShift),
                           0x400100, mark_useful && i % 2 == 1));
        offset += delta;
    }
}

TEST(SppDelta, SignMagnitudeEncoding)
{
    EXPECT_EQ(SppPrefetcher::encodeDelta(0), 0u);
    EXPECT_EQ(SppPrefetcher::encodeDelta(5), 5u);
    EXPECT_EQ(SppPrefetcher::encodeDelta(-5), 0x40u | 5u);
    EXPECT_EQ(SppPrefetcher::encodeDelta(63), 63u);
    EXPECT_EQ(SppPrefetcher::encodeDelta(-63), 0x40u | 63u);
}

TEST(SppSignature, ShiftXorUpdate)
{
    SppPrefetcher spp;
    // NewSig = (OldSig << 3) ^ delta, masked to 12 bits (Section 2.1).
    EXPECT_EQ(spp.nextSignature(0, 1), 0x001u);
    EXPECT_EQ(spp.nextSignature(0x001, 1), 0x009u);
    EXPECT_EQ(spp.nextSignature(0xfff, 1), (0xfff8u ^ 1u) & 0xfffu);
    // Negative deltas use the sign-magnitude encoding.
    EXPECT_EQ(spp.nextSignature(0, -1), 0x41u);
}

TEST(Spp, PrefetchesAlongLearnedStream)
{
    SppPrefetcher spp;
    MockIssuer issuer;
    spp.attach(&issuer);

    for (Addr page = 1000; page < 1012; ++page)
        walkPage(spp, page, 1, 64);

    EXPECT_GT(issuer.issued.size(), 100u);
    // Prefetches follow the +1 pattern: target = trigger + k blocks.
    EXPECT_GT(spp.sppStats().issued, 100u);
}

TEST(Spp, NoPrefetchesWithoutPattern)
{
    SppPrefetcher spp;
    MockIssuer issuer;
    spp.attach(&issuer);
    // A single access to each page trains nothing.
    for (Addr page = 2000; page < 2064; ++page)
        spp.operate(access(page << pageShift));
    EXPECT_TRUE(issuer.issued.empty());
}

TEST(Spp, HighConfidenceFillsL2)
{
    SppPrefetcher spp;
    MockIssuer issuer;
    spp.attach(&issuer);

    // Long clean +1 training with useful feedback keeps alpha high;
    // depth-1 candidates then carry confidence >= T_f and fill the L2.
    for (Addr page = 3000; page < 3030; ++page)
        walkPage(spp, page, 1, 64, true);

    int l2_fills = 0;
    for (auto &[addr, fill_l2] : issuer.issued)
        l2_fills += fill_l2 ? 1 : 0;
    EXPECT_GT(l2_fills, 0);
}

TEST(Spp, LookaheadDepthGrowsWithAccuracy)
{
    // Identical streams, with and without usefulness feedback: the
    // fed-back instance must sustain higher alpha and deeper walks.
    SppPrefetcher fed{SppConfig{}};
    MockIssuer issuer_fed;
    fed.attach(&issuer_fed);
    SppPrefetcher starved{SppConfig{}};
    MockIssuer issuer_starved;
    starved.attach(&issuer_starved);

    for (Addr page = 4000; page < 4040; ++page) {
        walkPage(fed, page, 1, 64, true);
        walkPage(starved, page, 1, 64, false);
    }

    EXPECT_GT(fed.alpha(), starved.alpha());
    EXPECT_GT(fed.sppStats().averageDepth(),
              starved.sppStats().averageDepth());
    EXPECT_GT(fed.alpha(), 0.15);
    EXPECT_GT(fed.sppStats().averageDepth(), 1.1);
}

TEST(Spp, GhrBootstrapsAcrossPageBoundary)
{
    SppPrefetcher spp;
    MockIssuer issuer;
    spp.attach(&issuer);

    // Train +1 streams that run off the end of their pages.
    for (Addr page = 5000; page < 5020; ++page)
        walkPage(spp, page, 1, 64, true);

    EXPECT_GT(spp.sppStats().ghrBootstraps, 0u);
}

TEST(Spp, FilterSeesCandidatesWithMetadata)
{
    RecordingFilter filter;
    SppConfig config;
    SppPrefetcher spp(config, &filter);
    MockIssuer issuer;
    spp.attach(&issuer);

    for (Addr page = 6000; page < 6010; ++page)
        walkPage(spp, page, 2, 32, true);

    ASSERT_GT(filter.candidates.size(), 10u);
    for (const SppCandidate &candidate : filter.candidates) {
        EXPECT_GE(candidate.depth, 1);
        EXPECT_LE(candidate.depth, int(config.maxDepth));
        EXPECT_GE(candidate.confidence, 0);
        EXPECT_LE(candidate.confidence, 100);
        EXPECT_EQ(candidate.pc, Pc{0x400100});
        EXPECT_NE(candidate.delta, 0);
        // Candidate target is the trigger's page.
        EXPECT_EQ(pageNumber(candidate.addr),
                  pageNumber(candidate.triggerAddr));
    }
}

TEST(Spp, FilterDropSuppressesIssue)
{
    RecordingFilter filter;
    filter.decision = SppFilter::Decision::Drop;
    SppPrefetcher spp(SppConfig{}, &filter);
    MockIssuer issuer;
    spp.attach(&issuer);

    for (Addr page = 7000; page < 7010; ++page)
        walkPage(spp, page, 1, 64);

    EXPECT_GT(filter.candidates.size(), 0u);
    EXPECT_TRUE(issuer.issued.empty());
    EXPECT_EQ(spp.sppStats().filterDropped, filter.candidates.size());
}

TEST(Spp, FilterFillLlcIssuesLowLevelPrefetch)
{
    RecordingFilter filter;
    filter.decision = SppFilter::Decision::FillLlc;
    SppPrefetcher spp(SppConfig{}, &filter);
    MockIssuer issuer;
    spp.attach(&issuer);

    for (Addr page = 8000; page < 8010; ++page)
        walkPage(spp, page, 1, 64);

    ASSERT_GT(issuer.issued.size(), 0u);
    for (auto &[addr, fill_l2] : issuer.issued)
        EXPECT_FALSE(fill_l2);
}

TEST(Spp, MaxPrefetchesPerTriggerIsHonoured)
{
    SppConfig config;
    config.maxPrefetchesPerTrigger = 2;
    RecordingFilter filter;
    SppPrefetcher spp(config, &filter);
    MockIssuer issuer;
    spp.attach(&issuer);

    std::size_t before = 0;
    std::size_t max_per_trigger = 0;
    for (Addr page = 9000; page < 9010; ++page) {
        for (int offset = 0; offset < 64; ++offset) {
            spp.operate(access((page << pageShift) |
                               (Addr(offset) << blockShift)));
            max_per_trigger = std::max(max_per_trigger,
                                       issuer.issued.size() - before);
            before = issuer.issued.size();
        }
    }
    EXPECT_LE(max_per_trigger, 2u);
}

TEST(Spp, ForcedDepthIssuesDeepPrefetches)
{
    SppConfig shallow;
    shallow.prefetchThreshold = 95; // throttle almost everything
    SppPrefetcher spp_shallow(shallow);
    MockIssuer issuer_shallow;
    spp_shallow.attach(&issuer_shallow);

    SppConfig forced = shallow;
    forced.forcedDepth = 6;
    SppPrefetcher spp_forced(forced);
    MockIssuer issuer_forced;
    spp_forced.attach(&issuer_forced);

    for (Addr page = 11000; page < 11020; ++page) {
        walkPage(spp_shallow, page, 1, 64);
        walkPage(spp_forced, page, 1, 64);
    }

    // Forcing the lookahead must produce strictly more prefetches
    // than the throttled configuration.
    EXPECT_GT(issuer_forced.issued.size(),
              issuer_shallow.issued.size());
    EXPECT_GT(spp_forced.sppStats().averageDepth(),
              spp_shallow.sppStats().averageDepth());
}

TEST(Spp, SameBlockReaccessLearnsNothing)
{
    SppPrefetcher spp;
    MockIssuer issuer;
    spp.attach(&issuer);
    const Addr addr = Addr{12000} << pageShift;
    for (int i = 0; i < 50; ++i)
        spp.operate(access(addr));
    EXPECT_TRUE(issuer.issued.empty());
}

TEST(Spp, SignatureTableEvictsLru)
{
    // Touch more pages than one ST set can hold; the prefetcher must
    // keep working (no crash, fresh signatures) as entries recycle.
    SppConfig config;
    config.stSets = 2;
    config.stWays = 2;
    SppPrefetcher spp(config);
    MockIssuer issuer;
    spp.attach(&issuer);
    for (Addr page = 13000; page < 13512; ++page)
        walkPage(spp, page, 1, 8);
    EXPECT_GT(spp.sppStats().triggers, 0u);
}

TEST(Spp, AlphaStaysInUnitInterval)
{
    SppPrefetcher spp;
    MockIssuer issuer;
    spp.attach(&issuer);
    for (Addr page = 14000; page < 14040; ++page)
        walkPage(spp, page, 1, 64, true);
    EXPECT_GE(spp.alpha(), 0.0);
    EXPECT_LE(spp.alpha(), 1.0);
}

TEST(Spp, LookaheadConfidenceDecaysWithDepth)
{
    RecordingFilter filter;
    SppPrefetcher spp(SppConfig{}, &filter);
    MockIssuer issuer;
    spp.attach(&issuer);

    for (Addr page = 15000; page < 15020; ++page)
        walkPage(spp, page, 1, 64, true);

    // For candidates produced by the same trigger chain, confidence
    // must not grow with depth (P_d = alpha * C_d * P_{d-1}).
    std::map<int, int> max_conf_at_depth;
    for (const SppCandidate &candidate : filter.candidates) {
        auto [it, inserted] = max_conf_at_depth.try_emplace(
            candidate.depth, candidate.confidence);
        if (!inserted)
            it->second = std::max(it->second, candidate.confidence);
    }
    ASSERT_GE(max_conf_at_depth.size(), 2u)
        << "expected multi-depth lookahead";
    int prev = 101;
    for (const auto &[depth, conf] : max_conf_at_depth) {
        EXPECT_LE(conf, prev) << "depth " << depth;
        prev = conf + 10; // allow mild non-monotonicity across slots
    }
}

TEST(Spp, DistinctPagesKeepDistinctSignatures)
{
    SppPrefetcher spp;
    MockIssuer issuer;
    spp.attach(&issuer);
    // Interleave two pages with different delta patterns; both learn.
    Addr page_a = 16000, page_b = 16001;
    unsigned off_a = 0, off_b = 0;
    for (int i = 0; i < 60; ++i) {
        spp.operate(access((page_a << pageShift) |
                           (Addr(off_a) << blockShift)));
        spp.operate(access((page_b << pageShift) |
                           (Addr(off_b) << blockShift)));
        off_a = (off_a + 1) % blocksPerPage;
        off_b = (off_b + 3) % blocksPerPage;
    }
    // Both delta families appear among the prefetch targets.
    EXPECT_GT(issuer.issued.size(), 10u);
}

} // namespace
} // namespace pfsim::prefetch
