/**
 * @file
 * Unit tests for the statistics substrate: histograms, Pearson
 * correlation, summary aggregation and the text table renderer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hh"
#include "stats/pearson.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace pfsim::stats
{
namespace
{

TEST(Histogram, CountsSamples)
{
    Histogram hist(-2, 2);
    hist.add(0);
    hist.add(0);
    hist.add(1);
    EXPECT_EQ(hist.count(0), 2u);
    EXPECT_EQ(hist.count(1), 1u);
    EXPECT_EQ(hist.count(-1), 0u);
    EXPECT_EQ(hist.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram hist(-2, 2);
    hist.add(100);
    hist.add(-100);
    EXPECT_EQ(hist.count(2), 1u);
    EXPECT_EQ(hist.count(-2), 1u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram hist(0, 4);
    hist.add(3, 10);
    EXPECT_EQ(hist.count(3), 10u);
    EXPECT_EQ(hist.total(), 10u);
    EXPECT_DOUBLE_EQ(hist.mean(), 3.0);
}

TEST(Histogram, MeanOfEmptyIsZero)
{
    Histogram hist(0, 4);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Histogram, FractionWithinBound)
{
    Histogram hist(-16, 15);
    hist.add(0);
    hist.add(1);
    hist.add(-1);
    hist.add(14);
    EXPECT_DOUBLE_EQ(hist.fractionWithin(1), 0.75);
    EXPECT_DOUBLE_EQ(hist.fractionWithin(15), 1.0);
}

TEST(Histogram, RenderHasOneLinePerBin)
{
    Histogram hist(0, 3);
    hist.add(1);
    std::string out = hist.render(10);
    int lines = 0;
    for (char c : out)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 4);
}

TEST(Pearson, PerfectPositiveCorrelation)
{
    PearsonAccumulator acc;
    for (int i = 0; i < 50; ++i)
        acc.add(i, 2.0 * i + 1.0);
    EXPECT_NEAR(acc.correlation(), 1.0, 1e-9);
}

TEST(Pearson, PerfectNegativeCorrelation)
{
    PearsonAccumulator acc;
    for (int i = 0; i < 50; ++i)
        acc.add(i, -3.0 * i);
    EXPECT_NEAR(acc.correlation(), -1.0, 1e-9);
}

TEST(Pearson, UncorrelatedNearZero)
{
    PearsonAccumulator acc;
    // A balanced design: each x sees both outcomes equally.
    for (int i = 0; i < 100; ++i) {
        acc.add(i % 10, 1.0);
        acc.add(i % 10, -1.0);
    }
    EXPECT_NEAR(acc.correlation(), 0.0, 1e-9);
}

TEST(Pearson, ConstantInputGivesZero)
{
    PearsonAccumulator acc;
    for (int i = 0; i < 10; ++i)
        acc.add(5.0, i);
    EXPECT_DOUBLE_EQ(acc.correlation(), 0.0);
}

TEST(Pearson, TooFewSamplesGivesZero)
{
    PearsonAccumulator acc;
    acc.add(1.0, 2.0);
    EXPECT_DOUBLE_EQ(acc.correlation(), 0.0);
}

TEST(Pearson, MergeEqualsCombinedStream)
{
    PearsonAccumulator a, b, combined;
    for (int i = 0; i < 30; ++i) {
        double x = i, y = (i % 3) - 1.0 + 0.1 * i;
        if (i % 2 == 0)
            a.add(x, y);
        else
            b.add(x, y);
        combined.add(x, y);
    }
    a.merge(b);
    EXPECT_NEAR(a.correlation(), combined.correlation(), 1e-12);
    EXPECT_EQ(a.count(), combined.count());
}

TEST(Summary, GeomeanKnownValues)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Summary, MeanKnownValues)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Summary, ToPercent)
{
    EXPECT_NEAR(toPercent(1.0378), 3.78, 1e-9);
    EXPECT_NEAR(toPercent(0.9), -10.0, 1e-9);
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"beta", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(1.0378), "+3.78%");
    EXPECT_EQ(TextTable::pct(0.95, 1), "-5.0%");
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable table({"a", "b"});
    table.addRow({"long-name", "1"});
    table.addRow({"x", "22"});
    std::string out = table.render();
    // All lines should have equal length (trailing content aligned).
    std::size_t first_len = out.find('\n');
    std::size_t pos = 0;
    int line_no = 0;
    while (pos < out.size()) {
        std::size_t next = out.find('\n', pos);
        if (next == std::string::npos)
            break;
        // Header, separator and rows share one width.
        EXPECT_EQ(next - pos, first_len) << "line " << line_no;
        pos = next + 1;
        ++line_no;
    }
}

} // namespace
} // namespace pfsim::stats
