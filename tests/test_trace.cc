/**
 * @file
 * Unit tests for the trace substrate: address patterns and the
 * synthetic trace engine.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "trace/file_trace.hh"
#include "trace/patterns.hh"
#include "trace/synthetic.hh"

namespace pfsim::trace
{
namespace
{

constexpr Addr base = Addr{1} << 30;

TEST(StreamPattern, SequentialBlocks)
{
    Rng rng(1);
    StreamPattern pattern(base);
    for (unsigned i = 0; i < 200; ++i) {
        Reference ref = pattern.next(rng);
        EXPECT_EQ(ref.addr, base + Addr(i) * blockSize);
        EXPECT_FALSE(ref.dependent);
    }
}

TEST(StridePattern, FixedSpacing)
{
    Rng rng(1);
    StridePattern pattern(base, 3);
    Addr prev = pattern.next(rng).addr;
    for (int i = 0; i < 100; ++i) {
        Addr cur = pattern.next(rng).addr;
        EXPECT_EQ(cur - prev, 3 * blockSize);
        prev = cur;
    }
}

TEST(StridePattern, NegativeStride)
{
    Rng rng(1);
    StridePattern pattern(base, -2);
    Addr first = pattern.next(rng).addr;
    Addr second = pattern.next(rng).addr;
    EXPECT_EQ(first - second, 2 * blockSize);
}

TEST(DeltaSeqPattern, FollowsSequenceWithinPage)
{
    Rng rng(1);
    DeltaSeqPattern pattern(base, {1, 2, 3}, 0.0);
    unsigned expected_offsets[] = {0, 1, 3, 6, 7, 9, 12};
    for (unsigned expected : expected_offsets) {
        Reference ref = pattern.next(rng);
        EXPECT_EQ(pageOffset(ref.addr), expected);
        EXPECT_EQ(pageNumber(ref.addr), pageNumber(base));
    }
}

TEST(DeltaSeqPattern, AdvancesPageWhenSequenceOverflows)
{
    Rng rng(1);
    DeltaSeqPattern pattern(base, {60}, 0.0);
    Addr first_page = pageNumber(pattern.next(rng).addr);
    // offset 60; +60 overflows -> next page at offset 0
    Addr second = pattern.next(rng).addr;
    EXPECT_EQ(pageOffset(second), 60u);
    Addr third = pattern.next(rng).addr;
    EXPECT_EQ(pageNumber(third), first_page + 1);
    EXPECT_EQ(pageOffset(third), 0u);
}

TEST(DeltaSeqPattern, BreakProbabilityOneJumpsEveryAccess)
{
    Rng rng(1);
    DeltaSeqPattern pattern(base, {1}, 1.0);
    Addr p0 = pageNumber(pattern.next(rng).addr);
    Addr p1 = pageNumber(pattern.next(rng).addr);
    Addr p2 = pageNumber(pattern.next(rng).addr);
    EXPECT_EQ(p1, p0 + 1);
    EXPECT_EQ(p2, p1 + 1);
}

TEST(PageShufflePattern, CoversEveryBlockOncePerPage)
{
    Rng rng(1);
    PageShufflePattern pattern(base);
    std::set<unsigned> offsets;
    Addr page = pageNumber(base);
    for (unsigned i = 0; i < blocksPerPage; ++i) {
        Reference ref = pattern.next(rng);
        EXPECT_EQ(pageNumber(ref.addr), page);
        offsets.insert(pageOffset(ref.addr));
    }
    EXPECT_EQ(offsets.size(), blocksPerPage);
    // The next access starts the following page.
    EXPECT_EQ(pageNumber(pattern.next(rng).addr), page + 1);
}

TEST(PageShufflePattern, OrderIsNotSequential)
{
    Rng rng(1);
    PageShufflePattern pattern(base);
    bool any_backward = false;
    Addr prev = pattern.next(rng).addr;
    for (unsigned i = 1; i < blocksPerPage; ++i) {
        Addr cur = pattern.next(rng).addr;
        any_backward |= cur < prev;
        prev = cur;
    }
    EXPECT_TRUE(any_backward);
}

TEST(PageShufflePattern, DeterministicPerPage)
{
    Rng rng_a(1), rng_b(99);
    PageShufflePattern a(base), b(base);
    for (unsigned i = 0; i < 3 * blocksPerPage; ++i)
        EXPECT_EQ(a.next(rng_a).addr, b.next(rng_b).addr);
}

TEST(RegionSweepPattern, MonotonicBoundedJumps)
{
    Rng rng(1);
    RegionSweepPattern pattern(base, 3);
    Addr prev = pattern.next(rng).addr;
    for (int i = 0; i < 500; ++i) {
        Addr cur = pattern.next(rng).addr;
        EXPECT_GT(cur, prev);
        EXPECT_LE(cur - prev, 3 * blockSize);
        prev = cur;
    }
}

TEST(BurstStridePattern, StridesWithinBurstThenJumps)
{
    Rng rng(1);
    BurstStridePattern pattern(base, 2, 5);
    Addr page = pageNumber(pattern.next(rng).addr);
    Addr prev_offset = 0;
    for (unsigned i = 1; i < 5; ++i) {
        Reference ref = pattern.next(rng);
        EXPECT_EQ(pageNumber(ref.addr), page);
        EXPECT_EQ(pageOffset(ref.addr), prev_offset + 2);
        prev_offset = pageOffset(ref.addr);
    }
    // Burst over: the next access is on a fresh page.
    EXPECT_EQ(pageNumber(pattern.next(rng).addr), page + 1);
}

TEST(PointerChasePattern, DependentAndFullPeriod)
{
    Rng rng(1);
    PointerChasePattern pattern(base, 16);
    std::set<Addr> seen;
    for (int i = 0; i < 16; ++i) {
        Reference ref = pattern.next(rng);
        EXPECT_TRUE(ref.dependent);
        seen.insert(ref.addr);
    }
    // Full-period LCG: every block of the footprint visited once.
    EXPECT_EQ(seen.size(), 16u);
}

TEST(HotReusePattern, StaysInFootprintWithoutColdMisses)
{
    Rng rng(1);
    HotReusePattern pattern(base, 64, 0.0);
    for (int i = 0; i < 1000; ++i) {
        Addr addr = pattern.next(rng).addr;
        EXPECT_GE(addr, base);
        EXPECT_LT(addr, base + 64 * blockSize);
    }
}

TEST(HotReusePattern, ColdAccessesLeaveFootprint)
{
    Rng rng(1);
    HotReusePattern pattern(base, 64, 0.5);
    bool saw_cold = false;
    std::set<Addr> cold_pages;
    for (int i = 0; i < 200; ++i) {
        Addr addr = pattern.next(rng).addr;
        if (addr >= base + 64 * blockSize) {
            saw_cold = true;
            // Cold pages are never revisited.
            EXPECT_TRUE(cold_pages.insert(pageNumber(addr)).second);
        }
    }
    EXPECT_TRUE(saw_cold);
}

SyntheticConfig
simpleConfig()
{
    SyntheticConfig config;
    config.name = "test";
    config.seed = 42;
    PhaseConfig phase;
    StreamConfig stream;
    stream.kind = PatternKind::Stream;
    phase.streams = {stream};
    phase.memRatio = 0.25;
    phase.storeProb = 0.2;
    config.phases = {phase};
    return config;
}

TEST(SyntheticTrace, DeterministicReplay)
{
    SyntheticTrace a(simpleConfig()), b(simpleConfig());
    for (int i = 0; i < 5000; ++i) {
        Instruction ia, ib;
        ASSERT_TRUE(a.next(ia));
        ASSERT_TRUE(b.next(ib));
        EXPECT_EQ(ia.pc, ib.pc);
        EXPECT_EQ(ia.loadAddr, ib.loadAddr);
        EXPECT_EQ(ia.storeAddr, ib.storeAddr);
        EXPECT_EQ(ia.isBranch, ib.isBranch);
        EXPECT_EQ(ia.branchTaken, ib.branchTaken);
    }
}

TEST(SyntheticTrace, DifferentSeedsProduceDifferentStreams)
{
    SyntheticConfig cfg_b = simpleConfig();
    cfg_b.seed = 43;
    SyntheticTrace a(simpleConfig()), b(cfg_b);
    int differences = 0;
    for (int i = 0; i < 2000; ++i) {
        Instruction ia, ib;
        a.next(ia);
        b.next(ib);
        differences += (ia.pc != ib.pc || ia.loadAddr != ib.loadAddr);
    }
    EXPECT_GT(differences, 0);
}

TEST(SyntheticTrace, InstructionMixApproximatesMemRatio)
{
    SyntheticTrace trace(simpleConfig());
    int loads = 0, total = 20000;
    for (int i = 0; i < total; ++i) {
        Instruction instr;
        trace.next(instr);
        loads += instr.isLoad();
    }
    EXPECT_NEAR(double(loads) / total, 0.25, 0.05);
}

TEST(SyntheticTrace, EveryIterationEndsWithBranch)
{
    SyntheticTrace trace(simpleConfig());
    int branches = 0, loads = 0;
    for (int i = 0; i < 20000; ++i) {
        Instruction instr;
        trace.next(instr);
        branches += instr.isBranch;
        loads += instr.isLoad();
    }
    // One branch and one load per iteration.
    EXPECT_EQ(branches, loads);
}

TEST(SyntheticTrace, StablePcIdentities)
{
    SyntheticTrace trace(simpleConfig());
    std::set<Pc> load_pcs;
    for (int i = 0; i < 20000; ++i) {
        Instruction instr;
        trace.next(instr);
        if (instr.isLoad())
            load_pcs.insert(instr.pc);
    }
    // A single stream has a single load PC.
    EXPECT_EQ(load_pcs.size(), 1u);
}

TEST(SyntheticTrace, PhasesSwitchAtConfiguredLength)
{
    SyntheticConfig config;
    config.name = "phases";
    config.seed = 7;
    PhaseConfig a;
    StreamConfig sa;
    sa.kind = PatternKind::Stream;
    a.streams = {sa};
    a.length = 1000;
    PhaseConfig b = a;
    b.length = 1000;
    config.phases = {a, b};

    SyntheticTrace trace(config);
    std::set<Pc> pcs_first, pcs_second;
    for (int i = 0; i < 1000; ++i) {
        Instruction instr;
        trace.next(instr);
        pcs_first.insert(instr.pc);
    }
    for (int i = 0; i < 1000; ++i) {
        Instruction instr;
        trace.next(instr);
        pcs_second.insert(instr.pc);
    }
    // Phase 1 uses different code identities than phase 0.
    for (Pc pc : pcs_second)
        EXPECT_EQ(pcs_first.count(pc), 0u) << std::hex << pc;
}

TEST(SyntheticTrace, DependentFlagOnlyFromPointerChase)
{
    SyntheticConfig config = simpleConfig();
    config.phases[0].streams[0].kind = PatternKind::PointerChase;
    config.phases[0].streams[0].footprintBlocks = 1024;
    SyntheticTrace chase(config);
    bool any_dependent = false;
    for (int i = 0; i < 2000; ++i) {
        Instruction instr;
        chase.next(instr);
        if (instr.isLoad())
            any_dependent |= instr.dependsOnPrev;
    }
    EXPECT_TRUE(any_dependent);

    SyntheticTrace stream(simpleConfig());
    for (int i = 0; i < 2000; ++i) {
        Instruction instr;
        stream.next(instr);
        EXPECT_FALSE(instr.dependsOnPrev);
    }
}

TEST(SyntheticTrace, StoresTargetTheLoadedBlock)
{
    SyntheticTrace trace(simpleConfig());
    Addr last_load = 0;
    for (int i = 0; i < 20000; ++i) {
        Instruction instr;
        trace.next(instr);
        if (instr.isLoad())
            last_load = instr.loadAddr;
        if (instr.isStore()) {
            EXPECT_EQ(blockAlign(instr.storeAddr),
                      blockAlign(last_load));
        }
    }
}

class TempTraceFile
{
  public:
    TempTraceFile()
    {
        char name[] = "/tmp/pfsim_trace_XXXXXX";
        int fd = mkstemp(name);
        if (fd >= 0)
            close(fd);
        path_ = name;
    }

    ~TempTraceFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(FileTrace, RoundTripPreservesEveryField)
{
    TempTraceFile file;
    SyntheticTrace original(simpleConfig());
    recordTrace(original, file.path(), 5000);

    SyntheticTrace reference(simpleConfig());
    FileTrace replay(file.path(), false);
    EXPECT_EQ(replay.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        Instruction a, b;
        ASSERT_TRUE(reference.next(a));
        ASSERT_TRUE(replay.next(b));
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.loadAddr, b.loadAddr);
        EXPECT_EQ(a.storeAddr, b.storeAddr);
        EXPECT_EQ(a.isBranch, b.isBranch);
        EXPECT_EQ(a.branchTaken, b.branchTaken);
        EXPECT_EQ(a.dependsOnPrev, b.dependsOnPrev);
    }
    Instruction end;
    EXPECT_FALSE(replay.next(end));
}

TEST(FileTrace, LoopWrapsAround)
{
    TempTraceFile file;
    SyntheticTrace original(simpleConfig());
    recordTrace(original, file.path(), 100);

    FileTrace replay(file.path(), true);
    Instruction first;
    ASSERT_TRUE(replay.next(first));
    Instruction instr;
    for (int i = 1; i < 100; ++i)
        ASSERT_TRUE(replay.next(instr));
    // The 101st instruction wraps to the first.
    ASSERT_TRUE(replay.next(instr));
    EXPECT_EQ(instr.pc, first.pc);
    EXPECT_EQ(instr.loadAddr, first.loadAddr);
}

TEST(FileTrace, PreservesDependentFlags)
{
    SyntheticConfig config = simpleConfig();
    config.phases[0].streams[0].kind = PatternKind::PointerChase;
    config.phases[0].streams[0].footprintBlocks = 512;
    TempTraceFile file;
    SyntheticTrace original(config);
    recordTrace(original, file.path(), 2000);

    FileTrace replay(file.path(), false);
    bool any_dependent = false;
    Instruction instr;
    while (replay.next(instr))
        any_dependent |= instr.dependsOnPrev;
    EXPECT_TRUE(any_dependent);
}

TEST(FileTraceError, MissingFileThrowsOpenFailed)
{
    try {
        FileTrace replay("/nonexistent/trace.bin");
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceError::Kind::OpenFailed);
        EXPECT_NE(std::string(e.what()).find("cannot open trace file"),
                  std::string::npos);
    }
}

TEST(FileTraceError, GarbageFileThrowsBadMagic)
{
    TempTraceFile file;
    std::FILE *f = std::fopen(file.path().c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    try {
        FileTrace replay(file.path());
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceError::Kind::BadMagic);
    }
}

TEST(FileTraceError, ShortHeaderThrowsBadMagic)
{
    TempTraceFile file;
    std::FILE *f = std::fopen(file.path().c_str(), "wb");
    std::fputs("PFSIM", f); // shorter than magic + count
    std::fclose(f);
    EXPECT_THROW(FileTrace{file.path()}, TraceError);
}

TEST(FileTraceError, EmptyTraceThrowsEmpty)
{
    TempTraceFile file;
    SyntheticTrace original(simpleConfig());
    recordTrace(original, file.path(), 0);
    try {
        FileTrace replay(file.path());
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceError::Kind::Empty);
    }
}

TEST(FileTraceError, TruncatedTailRecordThrows)
{
    TempTraceFile file;
    SyntheticTrace original(simpleConfig());
    recordTrace(original, file.path(), 50);

    // Chop the last record in half.
    std::FILE *f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(file.path().c_str(), size - 12), 0);

    try {
        FileTrace replay(file.path());
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceError::Kind::TruncatedRecord);
        EXPECT_NE(std::string(e.what()).find("promises"),
                  std::string::npos);
    }
}

TEST(FileTraceError, OverstatedCountThrowsTruncated)
{
    TempTraceFile file;
    SyntheticTrace original(simpleConfig());
    recordTrace(original, file.path(), 10);

    // Rewrite the count field to promise far more records than the
    // file holds: must fail up front, not allocate gigabytes.
    std::FILE *f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    const unsigned char count[8] = {0, 0, 0, 0, 0, 0, 0, 0x7f};
    std::fwrite(count, 1, sizeof(count), f);
    std::fclose(f);
    EXPECT_THROW(FileTrace{file.path()}, TraceError);
}

TEST(FileTraceError, ReservedFlagBitsThrowGarbageRecord)
{
    TempTraceFile file;
    SyntheticTrace original(simpleConfig());
    recordTrace(original, file.path(), 10);

    // Poison the flag byte of record 3 (offset 16 header + 3*25 + 24).
    std::FILE *f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 16 + 3 * 25 + 24, SEEK_SET);
    std::fputc(0xA5, f);
    std::fclose(f);

    try {
        FileTrace replay(file.path());
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceError::Kind::GarbageRecord);
    }
}

} // namespace
} // namespace pfsim::trace
