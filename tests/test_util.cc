/**
 * @file
 * Unit tests for the utility substrate: bit helpers, saturating
 * counters, the deterministic RNG and argument parsing.
 */

#include <gtest/gtest.h>

#include <set>

#include <string>
#include <vector>

#include "util/args.hh"
#include "util/bits.hh"
#include "util/random.hh"
#include "util/ring_buffer.hh"
#include "util/sat_counter.hh"
#include "util/small_vector.hh"
#include "util/types.hh"

namespace pfsim
{
namespace
{

TEST(Bits, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xfffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractBits)
{
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 0, 8), 0u);
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(Bits, Log2)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(std::uint64_t{1} << 40), 40u);
}

TEST(Bits, FoldXorStaysInRange)
{
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{0xdeadbeef},
          ~std::uint64_t{0}, std::uint64_t{1} << 63}) {
        for (unsigned n : {5u, 10u, 12u, 20u})
            EXPECT_LE(foldXor(v, n), mask(n)) << v << " " << n;
    }
}

TEST(Bits, FoldXorDeterministicAndSensitive)
{
    EXPECT_EQ(foldXor(0x123456789abcdef0, 12),
              foldXor(0x123456789abcdef0, 12));
    // High bits influence the fold.
    EXPECT_NE(foldXor(0x1, 12), foldXor(0x1 | (1ull << 50), 12));
}

TEST(Bits, Mix64ChangesValue)
{
    EXPECT_NE(mix64(1), mix64(2));
    EXPECT_EQ(mix64(42), mix64(42));
}

TEST(Types, BlockHelpers)
{
    EXPECT_EQ(blockAlign(0x12345), Addr{0x12340});
    EXPECT_EQ(blockNumber(0x12345), Addr{0x48d});
    EXPECT_EQ(pageNumber(0x12345), Addr{0x12});
    EXPECT_EQ(pageOffset(0x12345), 0xdu);
    EXPECT_EQ(blocksPerPage, 64u);
}

TEST(SignedSatCounter, Bounds5Bit)
{
    SignedSatCounter<5> counter;
    EXPECT_EQ(counter.value(), 0);
    for (int i = 0; i < 100; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 15);
    for (int i = 0; i < 200; ++i)
        counter.decrement();
    EXPECT_EQ(counter.value(), -16);
}

TEST(SignedSatCounter, TrainMovesTowardOutcome)
{
    SignedSatCounter<5> counter;
    counter.train(true);
    EXPECT_EQ(counter.value(), 1);
    counter.train(false);
    counter.train(false);
    EXPECT_EQ(counter.value(), -1);
}

TEST(SignedSatCounter, ConstructorClamps)
{
    SignedSatCounter<5> high(100);
    EXPECT_EQ(high.value(), 15);
    SignedSatCounter<5> low(-100);
    EXPECT_EQ(low.value(), -16);
}

TEST(UnsignedSatCounter, SaturatesAndHalves)
{
    UnsignedSatCounter<4> counter;
    bool saturated = false;
    for (int i = 0; i < 20; ++i)
        saturated = counter.increment();
    EXPECT_TRUE(saturated);
    EXPECT_EQ(counter.value(), 15u);
    counter.halve();
    EXPECT_EQ(counter.value(), 7u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversSmallRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(double(hits) / 20000.0, 0.25, 0.02);
}

TEST(Rng, GeometricMeanApproximation)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        auto d = rng.geometric(8.0);
        EXPECT_GE(d, 1u);
        sum += double(d);
    }
    EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(ParseValue, AcceptsIntegersAndBounds)
{
    EXPECT_EQ(parseIntValue("--shards", "12"), 12);
    EXPECT_EQ(parseIntValue("--offset", "-4"), -4);
    EXPECT_EQ(parseUnsignedValue("--shards respawn", "0"), 0u);
    EXPECT_EQ(parseUnsignedValue("--shards heartbeat", "250"), 250u);
}

TEST(ParseValueDeath, RejectsMalformedInteger)
{
    EXPECT_EXIT(parseUnsignedValue("--shards", "many"),
                testing::ExitedWithCode(1),
                "--shards expects an integer");
}

TEST(ParseValueDeath, RejectsTrailingGarbage)
{
    EXPECT_EXIT(parseIntValue("--shards", "4x"),
                testing::ExitedWithCode(1),
                "--shards expects an integer");
}

TEST(ParseValueDeath, RejectsOverflow)
{
    EXPECT_EXIT(parseIntValue("--shards", "99999999999999999999"),
                testing::ExitedWithCode(1), "overflows");
}

TEST(ParseValueDeath, RejectsNegativeWhereUnsigned)
{
    EXPECT_EXIT(parseUnsignedValue("--shards", "-2"),
                testing::ExitedWithCode(1), "must be >= 0");
}

TEST(Args, ParsesKeyValuePairs)
{
    const char *argv[] = {"prog", "--alpha=3", "--name=test", "--flag"};
    Args args(4, const_cast<char **>(argv),
              {"alpha", "name", "flag", "unused"});
    EXPECT_EQ(args.getInt("alpha", 0), 3);
    EXPECT_EQ(args.get("name", ""), "test");
    EXPECT_TRUE(args.has("flag"));
    EXPECT_FALSE(args.has("unused"));
    EXPECT_EQ(args.getInt("unused", 42), 42);
}

TEST(Args, DoubleValues)
{
    const char *argv[] = {"prog", "--ratio=0.75"};
    Args args(2, const_cast<char **>(argv), {"ratio"});
    EXPECT_DOUBLE_EQ(args.getDouble("ratio", 0.0), 0.75);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 1.5), 1.5);
}

TEST(Args, GetUnsignedAcceptsCounts)
{
    const char *argv[] = {"prog", "--jobs=4",
                          "--big=9223372036854775807"};
    Args args(3, const_cast<char **>(argv), {"jobs", "big"});
    EXPECT_EQ(args.getUnsigned("jobs", 0), 4u);
    EXPECT_EQ(args.getUnsigned("missing", 7), 7u);
    EXPECT_EQ(args.getUnsigned("big", 0), 9223372036854775807u);
}

TEST(ArgsDeath, RejectsMalformedInteger)
{
    const char *argv[] = {"prog", "--alpha=12abc"};
    Args args(2, const_cast<char **>(argv), {"alpha"});
    EXPECT_EXIT(args.getInt("alpha", 0), testing::ExitedWithCode(1),
                "--alpha expects an integer");
}

TEST(ArgsDeath, RejectsOverflowingInteger)
{
    const char *argv[] = {"prog", "--alpha=99999999999999999999"};
    Args args(2, const_cast<char **>(argv), {"alpha"});
    EXPECT_EXIT(args.getInt("alpha", 0), testing::ExitedWithCode(1),
                "overflows");
}

TEST(ArgsDeath, RejectsNegativeCount)
{
    const char *argv[] = {"prog", "--jobs=-1"};
    Args args(2, const_cast<char **>(argv), {"jobs"});
    EXPECT_EXIT(args.getUnsigned("jobs", 0),
                testing::ExitedWithCode(1), "--jobs must be >= 0");
}

TEST(ArgsDeath, RejectsMalformedDouble)
{
    const char *argv[] = {"prog", "--ratio=half"};
    Args args(2, const_cast<char **>(argv), {"ratio"});
    EXPECT_EXIT(args.getDouble("ratio", 0.0),
                testing::ExitedWithCode(1), "--ratio expects a number");
}

TEST(ArgsDeath, RejectsUnknownOption)
{
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(Args(2, const_cast<char **>(argv), {"known"}),
                testing::ExitedWithCode(1), "unknown option");
}

TEST(ArgsDeath, RejectsPositional)
{
    const char *argv[] = {"prog", "positional"};
    EXPECT_EXIT(Args(2, const_cast<char **>(argv), {"x"}),
                testing::ExitedWithCode(1), "positional");
}

// ---------------------------------------------------------- RingBuffer

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(util::RingBuffer<int>(1).capacity(), 2u);
    EXPECT_EQ(util::RingBuffer<int>(5).capacity(), 8u);
    EXPECT_EQ(util::RingBuffer<int>(8).capacity(), 8u);
    EXPECT_EQ(util::RingBuffer<int>(9).capacity(), 16u);
}

TEST(RingBuffer, FifoOrderAcrossWrapAround)
{
    util::RingBuffer<int> buf(4);
    // Interleave pushes and pops so head laps the array several times.
    int pushed = 0, popped = 0;
    for (int round = 0; round < 10; ++round) {
        while (buf.size() < 3)
            buf.push_back(pushed++);
        while (!buf.empty()) {
            EXPECT_EQ(buf.front(), popped);
            buf.pop_front();
            ++popped;
        }
    }
    EXPECT_EQ(pushed, popped);
    EXPECT_EQ(buf.capacity(), 4u); // never grew
}

TEST(RingBuffer, FullAndEmptyBoundaries)
{
    util::RingBuffer<int> buf(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
    for (int i = 0; i < 4; ++i)
        buf.push_back(i);
    EXPECT_EQ(buf.size(), buf.capacity());
    // Pushing past capacity grows by doubling and preserves order.
    buf.push_back(4);
    EXPECT_EQ(buf.capacity(), 8u);
    EXPECT_EQ(buf.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(buf[std::size_t(i)], i);
}

TEST(RingBuffer, IteratorsStableAcrossPushAndPopOfOtherElements)
{
    util::RingBuffer<std::string> buf(8);
    buf.push_back("a");
    buf.push_back("b");
    buf.push_back("c");

    auto it = buf.begin();
    ++it; // logical position 1: "b"
    buf.push_back("d"); // no growth: capacity 8
    EXPECT_EQ(*it, "b");
    buf.pop_front(); // head moves: position 1 is now "c"
    EXPECT_EQ(*it, "c");

    std::string walked;
    for (const std::string &s : buf)
        walked += s;
    EXPECT_EQ(walked, "bcd");
}

TEST(RingBuffer, EraseShiftsTailAndPreservesOrder)
{
    util::RingBuffer<int> buf(4);
    // Offset the head first so erase crosses the wrap point.
    buf.push_back(-1);
    buf.push_back(-2);
    buf.pop_front();
    buf.pop_front();
    for (int i = 0; i < 4; ++i)
        buf.push_back(i);
    buf.erase(1);
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf[0], 0);
    EXPECT_EQ(buf[1], 2);
    EXPECT_EQ(buf[2], 3);
}

TEST(RingBuffer, ClearKeepsStorage)
{
    util::RingBuffer<int> buf(4);
    for (int i = 0; i < 3; ++i)
        buf.push_back(i);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.capacity(), 4u);
    buf.push_back(7);
    EXPECT_EQ(buf.front(), 7);
}

TEST(SmallVector, InlineUntilCapacityThenSpills)
{
    util::SmallVector<int, 4> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 4; ++i)
        v.push_back(i * 10);
    EXPECT_FALSE(v.spilled());
    EXPECT_EQ(v.size(), 4u);

    v.push_back(40);
    EXPECT_TRUE(v.spilled());
    EXPECT_EQ(v.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(v[std::size_t(i)], i * 10);
}

TEST(SmallVector, IterationCoversBothStorages)
{
    util::SmallVector<int, 2> v;
    int sum = 0;
    for (int i = 1; i <= 2; ++i)
        v.push_back(i);
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 3);

    for (int i = 3; i <= 6; ++i)
        v.push_back(i);
    sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 21);
    EXPECT_TRUE(v.spilled());
}

TEST(SmallVector, ClearReturnsToInlineAndKeepsSpillCapacity)
{
    util::SmallVector<int, 2> v;
    for (int i = 0; i < 6; ++i)
        v.push_back(i);
    ASSERT_TRUE(v.spilled());
    const int *spill_data = v.data();

    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_FALSE(v.spilled());

    // Small refills live inline again...
    v.push_back(1);
    v.push_back(2);
    EXPECT_FALSE(v.spilled());

    // ... and a re-spill reuses the retained heap block: the pooled
    // steady state allocates at most once per container lifetime.
    v.push_back(3);
    EXPECT_TRUE(v.spilled());
    EXPECT_EQ(v.data(), spill_data);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[1], 2);
    EXPECT_EQ(v[2], 3);
}

TEST(SmallVector, MutableThroughIndexAndData)
{
    util::SmallVector<int, 3> v;
    v.push_back(5);
    v[0] = 9;
    EXPECT_EQ(*v.data(), 9);
    const util::SmallVector<int, 3> &cv = v;
    EXPECT_EQ(cv[0], 9);
    EXPECT_EQ(cv.end() - cv.begin(), 1);
}

} // namespace
} // namespace pfsim
