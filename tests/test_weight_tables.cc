/**
 * @file
 * The vector-kernel equivalence suite: every SIMD kernel the host can
 * run must be bit-identical to the scalar reference — same sums, same
 * clamp order, same saturation, same snapshot bytes.  The simulator's
 * determinism story depends on this file: figures and checkpoints are
 * produced on whatever kernel the host dispatches to, and they must
 * not be able to tell.
 */

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/ppf.hh"
#include "core/simd.hh"
#include "core/weight_tables.hh"
#include "snapshot/serial.hh"
#include "util/random.hh"

namespace
{

using namespace pfsim;
using ppf::FeatureId;
using ppf::FeatureIndices;
using ppf::featureTableSizes;
using ppf::numFeatures;
using ppf::WeightTables;

/** Heap-allocation counter for the allocation-free guarantees. */
std::size_t g_allocations = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

/** Every kernel this build + host can actually run. */
std::vector<simd::Kernel>
supportedKernels()
{
    std::vector<simd::Kernel> kernels;
    for (simd::Kernel k : {simd::Kernel::Scalar, simd::Kernel::Sse2,
                           simd::Kernel::Avx2}) {
        if (simd::kernelSupported(k))
            kernels.push_back(k);
    }
    return kernels;
}

FeatureIndices
randomIndices(Rng &rng)
{
    FeatureIndices idx;
    for (unsigned f = 0; f < numFeatures; ++f)
        idx[f] = std::uint32_t(rng.below(featureTableSizes[f]));
    return idx;
}

/** All weights equal, feature by feature, index by index. */
void
expectSameWeights(const WeightTables &a, const WeightTables &b)
{
    for (unsigned f = 0; f < numFeatures; ++f) {
        for (std::uint32_t i = 0; i < featureTableSizes[f]; ++i) {
            ASSERT_EQ(a.weight(FeatureId(f), i),
                      b.weight(FeatureId(f), i))
                << "feature " << f << " index " << i;
        }
    }
}

std::vector<std::uint8_t>
snapshotBytes(const WeightTables &w)
{
    snapshot::Sink sink;
    w.serialize(sink);
    return sink.buffer();
}

TEST(SimdDispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(simd::kernelSupported(simd::Kernel::Scalar));
    WeightTables w;
    EXPECT_TRUE(w.forceKernel(simd::Kernel::Scalar));
    EXPECT_EQ(w.kernel(), simd::Kernel::Scalar);
}

TEST(SimdDispatch, UnsupportedKernelRefusedAndKept)
{
    WeightTables w;
    const simd::Kernel before = w.kernel();
    for (simd::Kernel k : {simd::Kernel::Sse2, simd::Kernel::Avx2}) {
        if (!simd::kernelSupported(k)) {
            EXPECT_FALSE(w.forceKernel(k));
            EXPECT_EQ(w.kernel(), before);
        }
    }
}

/**
 * Exhaustive cross-kernel sweep over the configuration space: every
 * clamp width, masks covering all-enabled, all-disabled, alternating
 * and every single feature, with weights poked to the clamp edges —
 * including a disabled feature parked OUTSIDE the configured clamp
 * range (only poke/fault-injection can do that), which the train
 * kernels must leave untouched rather than helpfully re-clamp.
 */
TEST(KernelEquivalence, ExhaustiveConfigSweep)
{
    const auto kernels = supportedKernels();
    const std::uint32_t masks[] = {0x1ff, 0x000, 0x155, 0x0aa,
                                   0x001, 0x002, 0x004, 0x008,
                                   0x010, 0x020, 0x040, 0x080,
                                   0x100, 0x1fe, 0x0ff};

    for (unsigned clamp_bits = 2; clamp_bits <= 5; ++clamp_bits) {
        for (std::uint32_t mask : masks) {
            std::vector<WeightTables> tables;
            for (simd::Kernel k : kernels) {
                tables.emplace_back(mask, clamp_bits);
                ASSERT_TRUE(tables.back().forceKernel(k));
            }
            WeightTables &ref = tables.front();  // scalar

            // Identical pokes everywhere: clamp edges, physical
            // extremes (legal for disabled features via poke) and a
            // spread of interior values.
            Rng seed(0x5eed0 + clamp_bits * 31 + mask);
            for (unsigned f = 0; f < numFeatures; ++f) {
                const int values[] = {ref.weightMin(), ref.weightMax(),
                                      -16, 15, -1, 0, 1,
                                      int(seed.range(-16, 15))};
                for (std::size_t v = 0; v < std::size(values); ++v) {
                    const auto i = std::uint32_t(
                        seed.below(featureTableSizes[f]));
                    for (WeightTables &w : tables)
                        w.poke(FeatureId(f), i, values[v]);
                }
            }

            // Sums agree on every kernel, one candidate at a time and
            // batched at every batch size.
            Rng rng(0xabc0 + clamp_bits + mask);
            for (int round = 0; round < 64; ++round) {
                FeatureIndices idx[WeightTables::batchCapacity];
                for (auto &one : idx)
                    one = randomIndices(rng);
                const int expect0 = ref.sum(idx[0]);
                for (WeightTables &w : tables) {
                    EXPECT_EQ(w.sum(idx[0]), expect0);
                    for (std::size_t n = 1;
                         n <= WeightTables::batchCapacity; ++n) {
                        std::int32_t out[WeightTables::batchCapacity];
                        w.sumBatch(idx, n, out);
                        for (std::size_t c = 0; c < n; ++c)
                            EXPECT_EQ(out[c], ref.sum(idx[c]));
                    }
                }

                // Train every instance identically, to saturation and
                // back, and compare the full weight state.
                const FeatureIndices tidx = randomIndices(rng);
                const bool up = rng.chance(0.5);
                for (int step = 0; step < 3; ++step) {
                    for (WeightTables &w : tables)
                        w.train(tidx, up);
                }
                for (std::size_t t = 1; t < tables.size(); ++t)
                    expectSameWeights(ref, tables[t]);
            }
        }
    }
}

/** Saturation at the clamp edges is identical on every kernel. */
TEST(KernelEquivalence, TrainSaturatesIdentically)
{
    const auto kernels = supportedKernels();
    for (unsigned clamp_bits = 2; clamp_bits <= 5; ++clamp_bits) {
        std::vector<WeightTables> tables;
        for (simd::Kernel k : kernels) {
            tables.emplace_back(0x1ff, clamp_bits);
            ASSERT_TRUE(tables.back().forceKernel(k));
        }
        Rng rng(7 * clamp_bits);
        const FeatureIndices idx = randomIndices(rng);

        for (int i = 0; i < 40; ++i)
            for (WeightTables &w : tables)
                w.train(idx, true);
        for (WeightTables &w : tables) {
            for (unsigned f = 0; f < numFeatures; ++f)
                EXPECT_EQ(w.weight(FeatureId(f), idx[f]),
                          w.weightMax());
        }
        for (int i = 0; i < 80; ++i)
            for (WeightTables &w : tables)
                w.train(idx, false);
        for (WeightTables &w : tables) {
            for (unsigned f = 0; f < numFeatures; ++f)
                EXPECT_EQ(w.weight(FeatureId(f), idx[f]),
                          w.weightMin());
        }
    }
}

/**
 * The 1M-op randomized fuzz: a scalar reference and one instance per
 * supported SIMD kernel absorb the identical operation stream; sums
 * must match op for op, and the final serialized state must be the
 * same bytes.
 */
TEST(KernelEquivalence, FuzzMillionOps)
{
    const auto kernels = supportedKernels();
    std::vector<WeightTables> tables;
    for (simd::Kernel k : kernels) {
        tables.emplace_back();
        ASSERT_TRUE(tables.back().forceKernel(k));
    }
    WeightTables &ref = tables.front();

    Rng rng(0xf022);
    constexpr int ops = 1'000'000;
    std::uint64_t mismatches = 0;
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t kind = rng.below(10);
        if (kind < 6) {                     // single sum
            const FeatureIndices idx = randomIndices(rng);
            const int expect = ref.sum(idx);
            for (WeightTables &w : tables)
                mismatches += w.sum(idx) != expect;
        } else if (kind < 8) {              // batched sum
            FeatureIndices idx[WeightTables::batchCapacity];
            const std::size_t n =
                1 + rng.below(WeightTables::batchCapacity);
            for (std::size_t c = 0; c < n; ++c)
                idx[c] = randomIndices(rng);
            std::int32_t expect[WeightTables::batchCapacity];
            for (std::size_t c = 0; c < n; ++c)
                expect[c] = ref.sum(idx[c]);
            for (WeightTables &w : tables) {
                std::int32_t out[WeightTables::batchCapacity];
                w.sumBatch(idx, n, out);
                for (std::size_t c = 0; c < n; ++c)
                    mismatches += out[c] != expect[c];
            }
        } else {                            // train
            const FeatureIndices idx = randomIndices(rng);
            const bool up = rng.chance(0.5);
            for (WeightTables &w : tables)
                w.train(idx, up);
        }
    }
    EXPECT_EQ(mismatches, 0u);

    const std::vector<std::uint8_t> ref_bytes = snapshotBytes(ref);
    for (std::size_t t = 1; t < tables.size(); ++t) {
        expectSameWeights(ref, tables[t]);
        EXPECT_EQ(snapshotBytes(tables[t]), ref_bytes)
            << "snapshot bytes differ on kernel "
            << simd::kernelName(tables[t].kernel());
    }
}

/** Snapshots restore across kernels: bytes are kernel-independent. */
TEST(KernelEquivalence, SnapshotRoundTripAcrossKernels)
{
    WeightTables writer;
    Rng rng(0x60a7);
    for (int i = 0; i < 5000; ++i)
        writer.train(randomIndices(rng), rng.chance(0.5));

    for (simd::Kernel k : supportedKernels()) {
        snapshot::Sink sink;
        writer.serialize(sink);
        snapshot::Source src(sink.buffer().data(),
                             sink.buffer().size());
        WeightTables reader;
        ASSERT_TRUE(reader.forceKernel(k));
        reader.deserialize(src);
        expectSameWeights(writer, reader);
        Rng probe(0xbeef);
        for (int i = 0; i < 256; ++i) {
            const FeatureIndices idx = randomIndices(probe);
            EXPECT_EQ(reader.sum(idx), writer.sum(idx));
        }
    }
}

/** The AVX2 gather tail padding stays zero through heavy training. */
TEST(KernelEquivalence, GatherPaddingStaysZero)
{
    WeightTables w;
    Rng rng(0x9ad);
    for (int i = 0; i < 20000; ++i)
        w.train(randomIndices(rng), rng.chance(0.5));
    const WeightTables::AuditView view = w.auditState();
    const std::uint32_t logical = view.offsets[numFeatures];
    for (std::size_t p = 0; p < simd::gatherPadBytes; ++p)
        EXPECT_EQ(view.weights[logical + p], 0);
}

/** sum(), sumBatch() and train() never heap-allocate. */
TEST(AllocationFree, KernelHotPath)
{
    WeightTables w;
    Rng rng(0xa110c);
    FeatureIndices idx[WeightTables::batchCapacity];
    for (auto &one : idx)
        one = randomIndices(rng);
    std::int32_t out[WeightTables::batchCapacity];

    const std::size_t before = g_allocations;
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < 1000; ++i) {
        acc += w.sum(idx[0]);
        w.sumBatch(idx, WeightTables::batchCapacity, out);
        w.train(idx[i % WeightTables::batchCapacity], (i & 1) != 0);
    }
    EXPECT_EQ(g_allocations, before) << "hot path allocated (acc="
                                     << acc << ")";
}

// ---------------------------------------------------------------------
// Shared-context index hoisting (the batched burst's fast path).
// ---------------------------------------------------------------------

ppf::FeatureInput
randomInput(Rng &rng)
{
    ppf::FeatureInput input;
    input.triggerAddr = rng.next();
    input.pc = rng.next();
    input.pc1 = rng.next();
    input.pc2 = rng.next();
    input.pc3 = rng.next();
    input.depth = int(rng.below(16)) + 1;
    input.delta = int(rng.range(-64, 64));
    input.confidence = int(rng.range(-5, 130)); // incl. out-of-range
    input.signature = std::uint32_t(rng.below(1u << 12));
    return input;
}

TEST(SharedIndexContext, MatchesFullComputationExactly)
{
    Rng rng(0xc0ffee);
    for (int i = 0; i < 20000; ++i) {
        // One burst: shared trigger/PC context, varying per-candidate
        // fields (including edge confidences and negative deltas).
        ppf::FeatureInput base = randomInput(rng);
        const ppf::SharedIndexContext ctx =
            ppf::makeSharedContext(base);
        for (int c = 0; c < 4; ++c) {
            ppf::FeatureInput cand = base;
            cand.depth = int(rng.below(16)) + 1;
            cand.delta = int(rng.range(-64, 64));
            cand.confidence = int(rng.range(-5, 130));
            cand.signature = std::uint32_t(rng.below(1u << 12));
            ASSERT_TRUE(ppf::sharesContext(base, cand));
            EXPECT_EQ(ppf::computeIndices(ctx, cand),
                      ppf::computeIndices(cand));
        }
    }
}

TEST(SharedIndexContext, SharesContextDetectsDifferences)
{
    Rng rng(0x51deb);
    const ppf::FeatureInput base = randomInput(rng);
    ppf::FeatureInput other = base;
    EXPECT_TRUE(ppf::sharesContext(base, other));
    other.triggerAddr ^= 1;
    EXPECT_FALSE(ppf::sharesContext(base, other));
    other = base;
    other.pc ^= 1;
    EXPECT_FALSE(ppf::sharesContext(base, other));
    other = base;
    other.pc2 ^= 1;
    EXPECT_FALSE(ppf::sharesContext(base, other));
    other = base;
    other.delta += 1;   // per-candidate field: still shareable
    EXPECT_TRUE(ppf::sharesContext(base, other));
}

TEST(SharedIndexContext, BurstFillMatchesCheckedPath)
{
    // The fused fill skips the per-index range-check pass on the
    // grounds that every value is bounded by construction; this test
    // is that ground: each filled lane must equal table offset plus
    // the checked computeIndices() value, shared features must land
    // in sharedAbsIndices(), and unused lanes must point at weight 0.
    constexpr std::size_t stride = WeightTables::batchCapacity;
    constexpr std::size_t rows = ppf::burstPerCandidateFeatures.size();
    const WeightTables w;
    Rng rng(0xb1157);
    for (int i = 0; i < 5000; ++i) {
        ppf::FeatureInput burst[stride];
        burst[0] = randomInput(rng);
        const std::size_t n = rng.below(stride) + 1;
        for (std::size_t c = 1; c < n; ++c) {
            burst[c] = burst[0];
            burst[c].depth = int(rng.below(16)) + 1;
            burst[c].delta = int(rng.range(-64, 64));
            burst[c].confidence = int(rng.range(-5, 130));
            burst[c].signature = std::uint32_t(rng.below(1u << 12));
        }
        const ppf::SharedIndexContext ctx =
            ppf::makeSharedContext(burst[0]);

        std::uint32_t shared_abs[ppf::burstSharedFeatures.size()];
        ppf::sharedAbsIndices(ctx, w.tableOffsets(), shared_abs);

        std::uint32_t abs_idx[rows * stride];
        for (std::uint32_t &lane : abs_idx)
            lane = 0xdeadbeef; // catch unwritten lanes
        ppf::fillSharedBurstIndices(ctx, burst, n, w.tableOffsets(),
                                    stride, abs_idx);

        for (std::size_t c = 0; c < n; ++c) {
            const FeatureIndices checked =
                ppf::computeIndices(ctx, burst[c]);
            for (std::size_t r = 0; r < rows; ++r) {
                const unsigned f =
                    unsigned(ppf::burstPerCandidateFeatures[r]);
                ASSERT_EQ(abs_idx[r * stride + c],
                          w.tableOffsets()[f] + checked[f])
                    << "feature " << f << " lane " << c;
            }
            for (std::size_t k = 0;
                 k < ppf::burstSharedFeatures.size(); ++k) {
                const unsigned f =
                    unsigned(ppf::burstSharedFeatures[k]);
                ASSERT_EQ(shared_abs[k],
                          w.tableOffsets()[f] + checked[f])
                    << "shared feature " << f;
            }
        }
        for (std::size_t c = n; c < stride; ++c) {
            for (std::size_t r = 0; r < rows; ++r)
                ASSERT_EQ(abs_idx[r * stride + c], 0u)
                    << "unused lane " << c << " row " << r;
        }
    }
}

TEST(KernelEquivalence, SumBurstMatchesPerCandidateSum)
{
    // The fused burst entry point must agree with the scalar
    // single-candidate sum on every kernel, including after training
    // has moved the weights and with features ablated away on both
    // sides of the shared/per-candidate split.
    constexpr std::size_t stride = WeightTables::batchCapacity;
    for (simd::Kernel k : supportedKernels()) {
    for (std::uint32_t mask : {0x1ffu, 0x0a5u, 0x15au}) {
        WeightTables w(mask);
        ASSERT_TRUE(w.forceKernel(k));
        Rng rng(0x5eed + std::uint64_t(k) + mask);
        for (std::size_t i = 0; i < 5000; ++i)
            w.train(randomIndices(rng), (i & 1) != 0);

        for (int i = 0; i < 2000; ++i) {
            ppf::FeatureInput burst[stride];
            burst[0] = randomInput(rng);
            const std::size_t n = rng.below(stride) + 1;
            for (std::size_t c = 1; c < n; ++c) {
                burst[c] = burst[0];
                burst[c].depth = int(rng.below(16)) + 1;
                burst[c].delta = int(rng.range(-64, 64));
                burst[c].confidence = int(rng.range(-5, 130));
                burst[c].signature =
                    std::uint32_t(rng.below(1u << 12));
            }
            const ppf::SharedIndexContext ctx =
                ppf::makeSharedContext(burst[0]);
            std::uint32_t shared_abs[ppf::burstSharedFeatures.size()];
            ppf::sharedAbsIndices(ctx, w.tableOffsets(), shared_abs);
            std::uint32_t
                abs_idx[ppf::burstPerCandidateFeatures.size() *
                        stride];
            ppf::fillSharedBurstIndices(ctx, burst, n,
                                        w.tableOffsets(), stride,
                                        abs_idx);
            std::int32_t sums[stride];
            w.sumBurst(abs_idx, n, sums, w.burstBias(shared_abs));
            for (std::size_t c = 0; c < n; ++c) {
                ASSERT_EQ(sums[c],
                          w.sum(ppf::computeIndices(burst[c])))
                    << "kernel " << unsigned(k) << " mask " << mask
                    << " lane " << c;
            }
        }
    }
    }
}

// ---------------------------------------------------------------------
// Ppf batched-inference cache.
// ---------------------------------------------------------------------

prefetch::SppCandidate
makeCandidate(Addr trigger, Pc pc, int depth, int delta)
{
    prefetch::SppCandidate cand;
    cand.triggerAddr = trigger;
    cand.pc = pc;
    cand.depth = depth;
    cand.delta = delta;
    cand.addr = trigger + Addr(std::int64_t(delta) * 64 * depth);
    cand.confidence = 90 - 10 * depth;
    cand.signature = 0x123;
    return cand;
}

TEST(PpfBatch, BatchedAndUnbatchedDecisionsIdentical)
{
    ppf::Ppf batched;
    ppf::Ppf plain;
    Rng rng(0x7e57);

    for (int burst = 0; burst < 2000; ++burst) {
        const Addr trigger = (rng.below(256) << 12) |
                             (rng.below(64) << 6);
        const Pc pc = 0x1000 + (rng.below(32) << 2);
        prefetch::SppCandidate cands[4];
        for (int c = 0; c < 4; ++c)
            cands[c] = makeCandidate(trigger, pc, c + 1,
                                     int(rng.range(1, 8)));

        batched.beginBatch(cands, 4);
        for (int c = 0; c < 4; ++c) {
            EXPECT_EQ(batched.test(cands[c]), plain.test(cands[c]));
        }
        // Identical training feedback on both filters.
        if (burst % 3 == 0) {
            const Addr addr = cands[rng.below(4)].addr;
            batched.onDemand(addr, pc);
            plain.onDemand(addr, pc);
        }
    }

    const ppf::PpfStats &a = batched.ppfStats();
    const ppf::PpfStats &b = plain.ppfStats();
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.acceptedL2, b.acceptedL2);
    EXPECT_EQ(a.acceptedLlc, b.acceptedLlc);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.trainFalseNegative, b.trainFalseNegative);

    // The batched filter actually served from its cache.
    EXPECT_EQ(batched.batchSumHits(), 4u * 2000u);
    EXPECT_EQ(plain.batchSumHits(), 0u);
}

TEST(PpfBatch, ConsumesSubsequenceInOrder)
{
    ppf::Ppf filter;
    prefetch::SppCandidate cands[6];
    for (int c = 0; c < 6; ++c)
        cands[c] = makeCandidate(0x4000, 0x88, c + 1, 2);

    filter.beginBatch(cands, 6);
    // The SPP cap gate may skip candidates; consumption must follow
    // batch order as a subsequence.
    EXPECT_EQ(filter.test(cands[1]), ppf::Ppf::Decision::Drop);
    EXPECT_EQ(filter.test(cands[3]), ppf::Ppf::Decision::Drop);
    EXPECT_EQ(filter.test(cands[5]), ppf::Ppf::Decision::Drop);
    EXPECT_EQ(filter.batchSumHits(), 3u);

    // Going backwards is not a subsequence: served by full fallback.
    EXPECT_EQ(filter.test(cands[0]), ppf::Ppf::Decision::Drop);
    EXPECT_EQ(filter.batchSumHits(), 3u);
}

TEST(PpfBatch, FeedbackInvalidatesCache)
{
    ppf::Ppf filter;
    prefetch::SppCandidate cands[4];
    for (int c = 0; c < 4; ++c)
        cands[c] = makeCandidate(0x8000, 0x44, c + 1, 3);

    filter.beginBatch(cands, 4);
    (void)filter.test(cands[0]);
    EXPECT_EQ(filter.batchSumHits(), 1u);

    // Training changes the weights: the rest of the batch is stale
    // and must be recomputed, not served.
    filter.onDemand(cands[0].addr, 0x44);
    (void)filter.test(cands[1]);
    EXPECT_EQ(filter.batchSumHits(), 1u);
}

TEST(PpfBatch, BatchedInferenceMatchesInferenceSum)
{
    ppf::Ppf filter;
    Rng rng(0x1dea);
    for (int i = 0; i < 500; ++i) {
        const Addr trigger = rng.below(1u << 20) << 6;
        prefetch::SppCandidate cands[8];
        for (int c = 0; c < 8; ++c)
            cands[c] = makeCandidate(trigger, 0x77, c + 1,
                                     int(rng.range(-4, 4)));
        filter.beginBatch(cands, 8);
        for (int c = 0; c < 8; ++c) {
            const int expect = filter.inferenceSum(cands[c]);
            (void)filter.test(cands[c]);
            const ppf::Ppf::AuditView view = filter.auditState();
            ASSERT_TRUE(view.sumValid);
            EXPECT_EQ(view.lastSum, expect);
        }
    }
}

} // namespace
