/**
 * @file
 * Unit tests for the workload registry and mix generation.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/synthetic.hh"
#include "workloads/mixes.hh"
#include "workloads/registry.hh"

namespace pfsim::workloads
{
namespace
{

TEST(Registry, Spec17HasTwentyWorkloads)
{
    EXPECT_EQ(spec17Suite().size(), 20u);
}

TEST(Registry, Spec17MemIntensiveSubsetHasEleven)
{
    // The paper: 11 of 20 SPEC CPU 2017 applications have LLC MPKI > 1.
    EXPECT_EQ(memIntensiveSubset(spec17Suite()).size(), 11u);
}

TEST(Registry, Spec06SuitePopulated)
{
    EXPECT_EQ(spec06Suite().size(), 16u);
    EXPECT_GE(memIntensiveSubset(spec06Suite()).size(), 10u);
}

TEST(Registry, CloudSuiteHasFourApplications)
{
    EXPECT_EQ(cloudSuite().size(), 4u);
}

TEST(Registry, NamesAreUniqueAcrossSuites)
{
    std::set<std::string> names;
    std::size_t total = 0;
    for (const auto *suite :
         {&spec17Suite(), &spec06Suite(), &cloudSuite()}) {
        for (const Workload &workload : *suite) {
            names.insert(workload.name);
            ++total;
        }
    }
    EXPECT_EQ(names.size(), total);
}

TEST(Registry, EveryWorkloadBuildsAValidConfig)
{
    for (const auto *suite :
         {&spec17Suite(), &spec06Suite(), &cloudSuite()}) {
        for (const Workload &workload : *suite) {
            trace::SyntheticConfig config = workload.make();
            EXPECT_FALSE(config.phases.empty()) << workload.name;
            for (const auto &phase : config.phases) {
                EXPECT_FALSE(phase.streams.empty()) << workload.name;
                EXPECT_GT(phase.memRatio, 0.0) << workload.name;
                EXPECT_LT(phase.memRatio, 1.0) << workload.name;
            }
            // The trace must actually produce instructions.
            trace::SyntheticTrace trace(config);
            Instruction instr;
            EXPECT_TRUE(trace.next(instr)) << workload.name;
        }
    }
}

TEST(Registry, WorkloadSeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    std::size_t total = 0;
    for (const auto *suite :
         {&spec17Suite(), &spec06Suite(), &cloudSuite()}) {
        for (const Workload &workload : *suite) {
            seeds.insert(workload.make().seed);
            ++total;
        }
    }
    EXPECT_EQ(seeds.size(), total);
}

TEST(Registry, FindWorkloadLocatesEverySuite)
{
    EXPECT_EQ(findWorkload("603.bwaves_s-like").suite, "spec17");
    EXPECT_EQ(findWorkload("429.mcf-like").suite, "spec06");
    EXPECT_EQ(findWorkload("cassandra-like").suite, "cloud");
}

TEST(RegistryDeath, FindWorkloadFailsOnUnknownName)
{
    EXPECT_EXIT(findWorkload("no-such-workload"),
                testing::ExitedWithCode(1), "unknown workload");
}

TEST(Registry, PaperNamedWorkloadsPresent)
{
    // The benchmarks the paper's narrative singles out must exist.
    for (const char *name :
         {"603.bwaves_s-like", "605.mcf_s-like", "607.cactuBSSN_s-like",
          "623.xalancbmk_s-like", "649.fotonik3d_s-like"}) {
        EXPECT_TRUE(findWorkload(name).memIntensive) << name;
    }
}

TEST(Mixes, DeterministicForSameSeed)
{
    const auto pool = memIntensiveSubset(spec17Suite());
    const auto a = makeMixes(pool, 4, 10, 123);
    const auto b = makeMixes(pool, 4, 10, 123);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t m = 0; m < a.size(); ++m) {
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(a[m][c].name, b[m][c].name);
    }
}

TEST(Mixes, DifferentSeedsDiffer)
{
    const auto pool = memIntensiveSubset(spec17Suite());
    const auto a = makeMixes(pool, 4, 10, 1);
    const auto b = makeMixes(pool, 4, 10, 2);
    int differing = 0;
    for (std::size_t m = 0; m < a.size(); ++m) {
        for (std::size_t c = 0; c < 4; ++c)
            differing += a[m][c].name != b[m][c].name;
    }
    EXPECT_GT(differing, 0);
}

TEST(Mixes, ShapeMatchesRequest)
{
    const auto mixes = makeMixes(spec17Suite(), 8, 5, 7);
    EXPECT_EQ(mixes.size(), 5u);
    for (const Mix &mix : mixes)
        EXPECT_EQ(mix.size(), 8u);
}

TEST(Mixes, DrawsOnlyFromPool)
{
    const auto pool = memIntensiveSubset(spec17Suite());
    std::set<std::string> pool_names;
    for (const Workload &workload : pool)
        pool_names.insert(workload.name);
    for (const Mix &mix : makeMixes(pool, 4, 25, 99)) {
        for (const Workload &workload : mix)
            EXPECT_TRUE(pool_names.count(workload.name))
                << workload.name;
    }
}

TEST(Mixes, CoversThePoolEventually)
{
    const auto pool = memIntensiveSubset(spec17Suite());
    std::set<std::string> drawn;
    for (const Mix &mix : makeMixes(pool, 4, 50, 3)) {
        for (const Workload &workload : mix)
            drawn.insert(workload.name);
    }
    EXPECT_EQ(drawn.size(), pool.size());
}

} // namespace
} // namespace pfsim::workloads
