#!/usr/bin/env python3
"""pfsim-analyze: token-aware static analysis for the simulator.

Runs the project's structural checkers — the guarantees the compiler
and the runtime tests cannot express — over the real tree:

  snapshot     every serialized class persists every data member in
               both directions, or carries a reviewed suppression
               (tools/analyze/check_snapshot.py)
  registry     every state-bearing class under src/ serializes or is
               explicitly excluded (tools/analyze/check_registry.py)
  determinism  no wall-clock, pointer-identity or unordered-iteration
               leak into results (tools/analyze/check_determinism.py)

All three share the comment/string-stripping lexer (cpplex.py) and
declaration parser (cppdecl.py) that tools/lint/lint.py also builds
on.  Each checker is registered as its own ctest (analyze.snapshot,
analyze.registry, analyze.determinism) and the suite runs in the CI
``analyze`` job.

Exit status is non-zero when any checker reports a violation; each
violation prints as ``file:line: rule: detail``.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_determinism  # noqa: E402
import check_registry     # noqa: E402
import check_snapshot     # noqa: E402

CHECKERS = {
    "snapshot": check_snapshot.check,
    "registry": check_registry.check,
    "determinism": check_determinism.check,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(
                            __file__).resolve().parents[2])
    parser.add_argument("--checker", choices=[*CHECKERS, "all"],
                        default="all")
    args = parser.parse_args()
    root = args.root.resolve()

    selected = (CHECKERS if args.checker == "all"
                else {args.checker: CHECKERS[args.checker]})
    violations = []
    for name, fn in selected.items():
        violations.extend(fn(root))

    for rel, lineno, rule, detail in violations:
        print(f"{rel}:{lineno}: {rule}: {detail}")
    if violations:
        print(f"analyze: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"analyze: OK ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
