"""Determinism checker.

The distributed sweep fleet (ROADMAP item 1) and the content-addressed
checkpoint store both rest on one promise: the same configuration
produces byte-identical output on every host, at every ``--jobs=N``,
across save/restore.  Three lexical classes of C++ quietly break that
promise; this checker bans them from src/:

  ``wall-clock``       any time source — ``std::chrono`` clocks,
                       ``::time``/``std::time``, ``gettimeofday``,
                       ``clock_gettime``, ``localtime``/``gmtime``/
                       ``strftime`` — outside the allowlisted
                       telemetry set (MIPS reporting reads the host
                       clock but never feeds simulated state).
  ``pointer-identity`` pointer values laundered into integers or text:
                       ``%p`` in a format string, casts through
                       ``uintptr_t``/``intptr_t``, ``std::hash`` over
                       a pointer type.  Pointer values differ per run
                       (ASLR) and per host; anything keyed or printed
                       from them diverges.
  ``unordered-escape`` iteration over a ``std::unordered_*`` container
                       whose loop body lets the (implementation-
                       defined) visit order escape: stream insertion,
                       printf-family calls, serialization sinks, or
                       ``push_back`` into an ordered container.  Also
                       any ``unordered_`` type mentioned inside
                       src/snapshot (serialized state must have a
                       defined order end to end).

Allowlist: ``determinism_allowlist.txt``, keyed ``<rule> <path>`` with
a mandatory reason, so every exemption is a reviewed decision.

One carve-out has no escape hatch: the campaign journal writer
(src/sim/service/journal.*).  Journal records must replay identically
on any host — a wall-clock reading or a pointer-derived value baked
into a record would make ``--resume`` diverge from the run it resumes —
so ``wall-clock`` and ``pointer-identity`` findings there are reported
even when an allowlist entry names the file.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Set, Tuple

import cpplex
from cpplex import Tok
from suppress import Suppressions

ALLOWLIST = "determinism_allowlist.txt"

# The campaign journal must replay identically anywhere: wall-clock
# and pointer-identity findings in these files cannot be allowlisted.
JOURNAL_PREFIX = "src/sim/service/journal"
JOURNAL_RULES = {"wall-clock", "pointer-identity"}

WALL_CLOCK_IDS = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get", "localtime",
    "gmtime", "mktime", "strftime", "ftime",
}
PRINT_FAMILY = {"printf", "fprintf", "sprintf", "snprintf", "puts",
                "fputs", "vprintf", "vfprintf"}
UNORDERED_TYPES = {"unordered_map", "unordered_set",
                   "unordered_multimap", "unordered_multiset"}

Violation = Tuple[str, int, str, str]


def _match_brace(toks: List[Tok], open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(toks)):
        t = toks[i]
        if t.kind == "punct":
            if t.value == "{":
                depth += 1
            elif t.value == "}":
                depth -= 1
                if depth == 0:
                    return i
    return len(toks) - 1


def _prev_tok(toks: List[Tok], i: int) -> Optional[Tok]:
    return toks[i - 1] if i > 0 else None


def _scan_wall_clock(toks: List[Tok], rel: str,
                     out: List[Violation]) -> None:
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.value in WALL_CLOCK_IDS:
            out.append((rel, t.line, "wall-clock",
                        f"'{t.value}' is a host time source; "
                        f"simulated behaviour must depend only on "
                        f"simulated cycles (telemetry goes through "
                        f"the allowlist)"))
        elif t.value == "time":
            prev = _prev_tok(toks, i)
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if (prev is not None and prev.kind == "punct"
                    and prev.value == "::"
                    and nxt is not None and nxt.kind == "punct"
                    and nxt.value == "("):
                out.append((rel, t.line, "wall-clock",
                            "'time()' reads the host clock"))


def _scan_pointer_identity(toks: List[Tok], rel: str,
                           out: List[Violation]) -> None:
    for i, t in enumerate(toks):
        if t.kind == "str" and "%p" in t.value:
            out.append((rel, t.line, "pointer-identity",
                        "'%p' formats a pointer value; addresses "
                        "differ per run (ASLR) and per host"))
        elif t.kind == "id" and t.value in ("uintptr_t", "intptr_t"):
            out.append((rel, t.line, "pointer-identity",
                        f"'{t.value}' turns a pointer into an "
                        f"integer; anything derived from it is "
                        f"run-specific (cross-component references "
                        f"travel as registry ids, see "
                        f"snapshot/serial.hh)"))
        elif (t.kind == "id" and t.value == "hash"
              and i >= 2 and toks[i - 1].value == "::"
              and toks[i - 2].value == "std"
              and i + 1 < len(toks) and toks[i + 1].value == "<"):
            j = i + 1
            depth = 0
            for j in range(i + 1, min(i + 24, len(toks))):
                tv = toks[j].value
                if tv == "<":
                    depth += 1
                elif tv == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif tv == "*" and depth == 1:
                    out.append((rel, t.line, "pointer-identity",
                                "std::hash over a pointer type "
                                "hashes the address, not the object"))
                    break


def _unordered_names(toks: List[Tok]) -> Set[str]:
    """Names declared in this file with a std::unordered_* type.

    Heuristic: after an ``unordered_*`` token, the first identifier at
    template-angle depth zero ends the declarator — that is the
    variable/member name.
    """
    names: Set[str] = set()
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.value in UNORDERED_TYPES:
            depth = 0
            j = i + 1
            while j < n:
                tv = toks[j]
                if tv.kind == "punct":
                    if tv.value == "<":
                        depth += 1
                    elif tv.value == ">":
                        depth -= 1
                        if depth < 0:
                            break
                    elif tv.value == ">>":
                        depth -= 2
                    elif depth <= 0 and tv.value in (";", ")", "{",
                                                     "="):
                        break
                elif tv.kind == "id" and depth <= 0:
                    names.add(tv.value)
                    break
                j += 1
        i += 1
    return names


def _loop_body_escapes(body: List[Tok]) -> Optional[str]:
    for t in body:
        if t.kind == "punct" and t.value == "<<":
            return "stream insertion ('<<')"
        if t.kind == "id" and t.value in PRINT_FAMILY:
            return f"'{t.value}'"
        if t.kind == "id" and t.value in ("sink", "Sink"):
            return "a serialization sink"
        if t.kind == "id" and t.value == "push_back":
            return "'push_back' (materializes the visit order)"
    return None


def _scan_unordered_escape(toks: List[Tok], rel: str,
                           out: List[Violation]) -> None:
    names = _unordered_names(toks)
    if not names:
        return
    n = len(toks)
    for i, t in enumerate(toks):
        if not (t.kind == "id" and t.value == "for" and i + 1 < n
                and toks[i + 1].value == "("):
            continue
        close = i + 1
        depth = 0
        colon = -1
        for close in range(i + 1, n):
            tv = toks[close]
            if tv.kind == "punct":
                if tv.value == "(":
                    depth += 1
                elif tv.value == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif tv.value == ":" and depth == 1 and colon < 0:
                    colon = close
        if colon < 0:
            continue    # classic for loop
        range_ids = {x.value for x in toks[colon + 1:close]
                     if x.kind == "id"}
        if not (range_ids & names):
            continue
        if close + 1 < n and toks[close + 1].value == "{":
            body = toks[close + 2:_match_brace(toks, close + 1)]
        else:       # single-statement body
            body = []
            for j in range(close + 1, n):
                if toks[j].kind == "punct" and toks[j].value == ";":
                    break
                body.append(toks[j])
        escape = _loop_body_escapes(body)
        if escape:
            out.append(
                (rel, t.line, "unordered-escape",
                 f"iteration over unordered container "
                 f"'{', '.join(sorted(range_ids & names))}' feeds "
                 f"{escape}; visit order is implementation-defined "
                 f"— iterate a sorted copy or an ordered container"))


def check(root: pathlib.Path,
          allowlist_path: Optional[pathlib.Path] = None
          ) -> List[Violation]:
    allow = Suppressions(
        allowlist_path
        or pathlib.Path(__file__).resolve().parent / ALLOWLIST,
        key_fields=2)
    violations: List[Violation] = []

    paths = sorted((root / "src").rglob("*.cc"))
    paths += sorted((root / "src").rglob("*.hh"))
    for path in paths:
        rel = str(path.relative_to(root))
        toks = cpplex.lex_file(path)
        found: List[Violation] = []
        _scan_wall_clock(toks, rel, found)
        _scan_pointer_identity(toks, rel, found)
        _scan_unordered_escape(toks, rel, found)
        if rel.startswith("src/snapshot"):
            for t in toks:
                if t.kind == "id" and t.value in UNORDERED_TYPES:
                    found.append(
                        (rel, t.line, "unordered-escape",
                         f"'{t.value}' inside src/snapshot: "
                         f"serialized state needs a defined order"))
        for v in found:
            if v[0].startswith(JOURNAL_PREFIX) and v[2] in JOURNAL_RULES:
                violations.append(
                    (v[0], v[1], v[2],
                     v[3] + " (journal records must replay "
                     "identically; not allowlistable)"))
                continue
            if allow.match(f"{v[2]} {v[0]}"):
                continue
            violations.append(v)

    for key, lineno in allow.unused():
        violations.append(
            (str(allow.path), lineno, "determinism",
             f"stale allowlist entry '{key}': nothing left to "
             f"exempt; delete the entry"))
    return violations
