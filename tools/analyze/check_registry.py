"""State-registry coverage checker — the other half of the snapshot
hole.

check_snapshot proves that classes which *do* serialize cover all
their members.  This checker proves that classes which *should*
serialize actually do.  A class under src/ is presumed to hold
checkpoint-relevant simulation state when either

  - it declares a cycle-path method (``tick``/``cycle``) and has at
    least one non-static, non-const data member (a ticking component
    that owns mutable fields advances them), or
  - it is named in ``state_registry.txt``, the explicit registry of
    state-bearing classes the heuristic cannot see (trace generators,
    table classes mutated from operate/train paths, ...).

Every such class must declare both ``serialize`` and ``deserialize``,
or appear in ``state_registry_exclusions.txt`` with a written reason
(host-side orchestration, stats sinks reset per run, ...).  Registry
entries that name classes the parser cannot find, and stale
exclusions, are violations — both files can only describe the tree.

A new PMP or Pythia-style backend (ROADMAP item 2) that adds a
ticking/registered class without snapshot support therefore fails the
build here, not in a divergent sweep three PRs later.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Tuple

import cppdecl
from suppress import Suppressions

REGISTRY = "state_registry.txt"
EXCLUSIONS = "state_registry_exclusions.txt"
TICK_METHODS = {"tick", "cycle"}

Violation = Tuple[str, int, str, str]


def _strip_root_ns(qualname: str) -> str:
    return qualname[len("pfsim::"):] if qualname.startswith(
        "pfsim::") else qualname


def check(root: pathlib.Path,
          registry_path: Optional[pathlib.Path] = None,
          exclusions_path: Optional[pathlib.Path] = None
          ) -> List[Violation]:
    here = pathlib.Path(__file__).resolve().parent
    registry = Suppressions(registry_path or here / REGISTRY)
    exclusions = Suppressions(exclusions_path or here / EXCLUSIONS)
    violations: List[Violation] = []

    classes: List[cppdecl.ClassDecl] = []
    for header in sorted((root / "src").rglob("*.hh")):
        rel = str(header.relative_to(root))
        classes.extend(cppdecl.classes_in_file(header, rel))

    seen_keys = set()
    for decl in classes:
        key = _strip_root_ns(decl.qualname)
        seen_keys.add(key)
        mutable_members = [m for m in decl.members if not m.is_const]
        ticks = bool(decl.methods & TICK_METHODS)
        registered = registry.match(key)
        if not (ticks or registered) or not mutable_members:
            continue
        if {"serialize", "deserialize"} <= decl.methods:
            continue
        if exclusions.match(key):
            continue
        why = ("declares a cycle-path method "
               f"({', '.join(sorted(decl.methods & TICK_METHODS))})"
               if ticks else
               f"is registered as state-bearing in {REGISTRY}")
        violations.append(
            (decl.path, decl.line, "state-registry",
             f"{key} {why} and holds "
             f"{len(mutable_members)} mutable member(s) "
             f"({mutable_members[0].name}, ...) but declares no "
             f"serialize()/deserialize(); checkpoint it or exclude "
             f"it with a reason in {EXCLUSIONS}"))

    for key, lineno in registry.unused():
        violations.append(
            (str(registry.path), lineno, "state-registry",
             f"stale registry entry '{key}': no such class found "
             f"under src/; fix or delete the entry"))
    for key, lineno in exclusions.unused():
        violations.append(
            (str(exclusions.path), lineno, "state-registry",
             f"stale exclusion '{key}': class gone or now "
             f"serialized; delete the entry"))
    return violations
