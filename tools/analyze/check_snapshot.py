"""Snapshot-completeness checker.

The wire format lives in two TUs — src/snapshot/state_io.cc (machine
snapshots) and src/sim/service/wire.cc (the sweep service's result
slots) — while the data they must cover lives in the component
headers.  Nothing ties them together at compile time, so a new data
member silently rots a serializer: snapshots keep round-tripping
structurally while restored machines diverge from saved ones, and a
stats struct gaining a field loses it crossing the worker pipe.  This
checker closes that gap statically:

  1. every ``Class::serialize`` / ``Class::deserialize`` definition in
     state_io.cc is paired with the class's declaration (parsed from
     its owning header) and each non-static data member must be
     referenced *in both bodies* — or listed in
     ``snapshot_suppressions.txt`` with a written reason (config-
     derived values, unowned wiring pointers, instrumentation);
  2. free helper pairs (``writeRequest``/``readRequest`` over value
     structs) are held to the same standard against the struct they
     take by reference;
  3. partially-serialized support structs: if *any* member of a struct
     declared in a serialized class's header is referenced by that
     header's serialize/deserialize bodies, *all* of its members must
     be (a field added to MshrEntry but not persisted trips here);
  4. a class with only one direction defined, and stale suppressions,
     are violations in their own right.

Member-reference granularity is the identifier token: ``stats_`` in
the body covers the ``stats_`` member; ``entry.addr`` covers ``addr``.
That is deliberately name-based, not type-based — it is what a
reviewer checks by eye, mechanized.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Set, Tuple

import cppdecl
import cpplex
from suppress import Suppressions

STATE_IO = pathlib.Path("src") / "snapshot" / "state_io.cc"
WIRE_IO = pathlib.Path("src") / "sim" / "service" / "wire.cc"
SUPPRESSIONS = "snapshot_suppressions.txt"

Violation = Tuple[str, int, str, str]


def _strip_root_ns(qualname: str) -> str:
    return qualname[len("pfsim::"):] if qualname.startswith(
        "pfsim::") else qualname


def _body_ids(body) -> Set[str]:
    return {t.value for t in body if t.kind == "id"}


class _IoDef:
    def __init__(self):
        self.ser = None     # FuncDef
        self.deser = None   # FuncDef
        self.rel = None     # IO file that defines the pair


def _helper_struct_name(params) -> Optional[str]:
    """For writeX/readX helpers: the qualified type of the non-Sink/
    Source reference parameter, e.g. ``cache::Request``."""
    groups: List[List] = [[]]
    depth = 0
    for t in params:
        if t.kind == "punct" and t.value in ("(", "<", "["):
            depth += 1
        elif t.kind == "punct" and t.value in (")", ">", "]"):
            depth -= 1
        if t.kind == "punct" and t.value == "," and depth == 0:
            groups.append([])
        else:
            groups[-1].append(t)
    for group in groups:
        ids = [t.value for t in group if t.kind == "id"]
        if not ids or "Sink" in ids or "Source" in ids:
            continue
        # Type ids minus cv-qualifiers and the parameter name (last).
        type_ids = [v for v in ids if v != "const"]
        if len(type_ids) >= 2:
            return "::".join(type_ids[:-1])
        if len(type_ids) == 1:
            return type_ids[0]
    return None


def _find_class(classes: List[cppdecl.ClassDecl],
                qual: str) -> Optional[cppdecl.ClassDecl]:
    """Match ``a::b::C`` against parsed qualnames by suffix."""
    suffix = "::" + qual
    best = None
    for c in classes:
        if c.qualname == qual or c.qualname.endswith(suffix):
            if best is not None and best.qualname != c.qualname:
                return None     # ambiguous
            best = c
    return best


def check(root: pathlib.Path,
          state_io: Optional[pathlib.Path] = None,
          suppressions_path: Optional[pathlib.Path] = None
          ) -> List[Violation]:
    violations: List[Violation] = []
    state_io = state_io or (root / STATE_IO)
    sup = Suppressions(
        suppressions_path
        or pathlib.Path(__file__).resolve().parent / SUPPRESSIONS)

    # ---- declarations: every class in every src header -------------
    classes: List[cppdecl.ClassDecl] = []
    classes_by_path: Dict[str, List[cppdecl.ClassDecl]] = {}
    for header in sorted((root / "src").rglob("*.hh")):
        rel = str(header.relative_to(root))
        parsed = cppdecl.classes_in_file(header, rel)
        classes.extend(parsed)
        classes_by_path[rel] = parsed

    # ---- definitions: serialize/deserialize bodies in the IO TUs ---
    io_files = [state_io]
    wire_io = root / WIRE_IO
    if wire_io.is_file() and wire_io != state_io:
        io_files.append(wire_io)
    rel_io = str(state_io.relative_to(root)) if state_io.is_relative_to(
        root) else str(state_io)
    by_class: Dict[str, _IoDef] = {}
    helpers: Dict[str, _IoDef] = {}      # struct qual -> write/read
    for io_path in io_files:
        rel = (str(io_path.relative_to(root))
               if io_path.is_relative_to(root) else str(io_path))
        defs = cppdecl.parse_function_defs(cpplex.lex_file(io_path),
                                           rel)
        for fd in defs:
            parts = fd.qualname.split("::")
            if (parts[-1] in ("serialize", "deserialize")
                    and len(parts) > 1):
                cls = "::".join(parts[:-1])
                entry = by_class.setdefault(cls, _IoDef())
                entry.rel = rel
                if parts[-1] == "serialize":
                    entry.ser = fd
                else:
                    entry.deser = fd
            elif parts[-1].startswith(("write", "read")):
                struct = _helper_struct_name(fd.params)
                if struct is None:
                    continue
                entry = helpers.setdefault(struct, _IoDef())
                entry.rel = rel
                if parts[-1].startswith("write"):
                    entry.ser = fd
                else:
                    entry.deser = fd

    checked_structs: Set[str] = set()

    def check_members(decl: cppdecl.ClassDecl, ser_ids: Set[str],
                      deser_ids: Set[str],
                      rel_io: str = rel_io) -> None:
        checked_structs.add(decl.qualname)
        key_base = _strip_root_ns(decl.qualname)
        if sup.match(f"{key_base}::*"):
            return
        for m in decl.members:
            in_ser = m.name in ser_ids
            in_deser = m.name in deser_ids
            if in_ser and in_deser:
                continue
            if sup.match(f"{key_base}::{m.name}"):
                continue
            if not in_ser and not in_deser:
                detail = ("not referenced by serialize() or "
                          "deserialize()")
            elif not in_deser:
                detail = "written by serialize() but never restored"
            else:
                detail = "restored by deserialize() but never saved"
            violations.append(
                (decl.path, m.line, "snapshot-completeness",
                 f"{key_base}::{m.name} {detail}; persist it in "
                 f"{rel_io} or add a reviewed suppression"))

    # ---- rule 1: member serialize/deserialize pairs ----------------
    header_bodies: Dict[str, Tuple[Set[str], Set[str]]] = {}
    for cls_qual, entry in sorted(by_class.items()):
        decl = _find_class(classes, cls_qual)
        if decl is None:
            violations.append(
                (entry.rel, (entry.ser or entry.deser).line,
                 "snapshot-completeness",
                 f"cannot locate the declaration of {cls_qual} in any "
                 f"src/ header (parser gap or dead serializer)"))
            continue
        if entry.ser is None or entry.deser is None:
            have, miss = (("serialize", "deserialize")
                          if entry.deser is None
                          else ("deserialize", "serialize"))
            violations.append(
                (entry.rel, (entry.ser or entry.deser).line,
                 "snapshot-completeness",
                 f"{_strip_root_ns(cls_qual)} defines {have}() but "
                 f"not {miss}(): one-way state cannot round-trip"))
            continue
        ser_ids = _body_ids(entry.ser.body)
        deser_ids = _body_ids(entry.deser.body)
        check_members(decl, ser_ids, deser_ids, entry.rel)
        prev = header_bodies.setdefault(decl.path, (set(), set()))
        prev[0].update(ser_ids)
        prev[1].update(deser_ids)

    # ---- rule 2: free helper pairs over value structs --------------
    for struct_qual, entry in sorted(helpers.items()):
        decl = _find_class(classes, struct_qual)
        if decl is None:
            continue        # helper over a non-project type
        if entry.ser is None or entry.deser is None:
            have, miss = (("write", "read") if entry.deser is None
                          else ("read", "write"))
            violations.append(
                (entry.rel, (entry.ser or entry.deser).line,
                 "snapshot-completeness",
                 f"{_strip_root_ns(decl.qualname)} has a {have} "
                 f"helper but no matching {miss} helper"))
            continue
        check_members(decl, _body_ids(entry.ser.body),
                      _body_ids(entry.deser.body), entry.rel)

    # ---- rule 3: partially-covered support structs -----------------
    for path, (ser_ids, deser_ids) in sorted(header_bodies.items()):
        for decl in classes_by_path.get(path, []):
            if decl.qualname in checked_structs or not decl.members:
                continue
            names = [m.name for m in decl.members]
            referenced = [n for n in names
                          if n in ser_ids or n in deser_ids]
            if not referenced:
                continue    # struct plays no part in serialization
            key_base = _strip_root_ns(decl.qualname)
            if sup.match(f"{key_base}::*"):
                continue
            for m in decl.members:
                if m.name in ser_ids and m.name in deser_ids:
                    continue
                if sup.match(f"{key_base}::{m.name}"):
                    continue
                violations.append(
                    (decl.path, m.line, "snapshot-completeness",
                     f"{key_base}::{m.name}: sibling members "
                     f"({', '.join(referenced[:3])}...) are "
                     f"serialized via {path}'s owners but this one "
                     f"is not"))

    # ---- stale suppressions ----------------------------------------
    for key, lineno in sup.unused():
        violations.append(
            (str(sup.path), lineno, "snapshot-completeness",
             f"stale suppression '{key}': no such unserialized "
             f"member remains; delete the entry"))
    return violations
