"""Lightweight C++ declaration parser on top of cpplex.

Extracts the two shapes the analyzers need, without attempting to be a
real C++ front end:

  - ``parse_classes``: every class/struct *definition* (including
    nested ones) with its namespace-qualified name, its non-static
    data members, and the names of its declared methods.
  - ``parse_function_defs``: every namespace-scope function
    *definition* (``void Qual::name(...) [const] { ... }``) with its
    qualified name, parameter tokens and body token slice — enough to
    find ``Class::serialize`` definitions in state_io.cc and inspect
    which members they touch.

Good-enough rules, documented rather than hidden:

  - Macros are not expanded; templates are not instantiated; the
    parser tracks braces/parens/angles lexically.
  - ``<`` opens a template-argument list only when it directly follows
    an identifier, ``::`` or ``>`` — the member declarations this
    project writes never contain a bare less-than outside an
    initializer, and initializers are skipped wholesale.
  - ``static``/``constexpr`` members are not instance state and are
    dropped; ``const`` and ``mutable`` members are kept and flagged.
"""

from __future__ import annotations

import dataclasses
from typing import List, NamedTuple, Optional

from cpplex import Tok, lex_file


class Member(NamedTuple):
    name: str
    line: int
    is_const: bool
    is_mutable: bool


@dataclasses.dataclass
class ClassDecl:
    name: str           # unqualified
    qualname: str       # namespace- and enclosing-class-qualified
    line: int
    path: str           # repo-relative file the definition lives in
    members: List[Member]
    methods: set        # declared method names (incl. inline-defined)
    nested: List[str]   # qualnames of directly nested class definitions


class FuncDef(NamedTuple):
    qualname: str       # e.g. pfsim::cache::MshrFile::serialize
    line: int
    params: List[Tok]   # tokens between the parameter parens
    body: List[Tok]     # tokens between the body braces


_SKIP_STATEMENT_LEADS = {"using", "typedef", "friend", "static_assert",
                         "template"}
_ACCESS = {"public", "protected", "private"}
_NOT_MEMBER_NAMES = {"const", "mutable", "static", "constexpr",
                     "volatile", "inline", "virtual", "explicit",
                     "operator", "override", "final", "noexcept",
                     "default", "delete", "class", "struct", "enum",
                     "unsigned", "signed", "int", "long", "short",
                     "char", "bool", "float", "double", "auto", "void"}


def _match_brace(toks: List[Tok], open_index: int) -> int:
    """Index of the '}' matching toks[open_index] == '{'."""
    depth = 0
    i = open_index
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.value == "{":
                depth += 1
            elif t.value == "}":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _angle_tracks(prev: Optional[Tok]) -> bool:
    """Does '<' after ``prev`` open a template-argument list?"""
    if prev is None:
        return False
    return (prev.kind == "id"
            or (prev.kind == "punct" and prev.value in ("::", ">")))


def _member_names(stmt: List[Tok]) -> List[Member]:
    """Extract declarator names from one member-declaration statement.

    ``stmt`` excludes the terminating ';'.  Returns [] for non-data
    statements (the caller has already filtered the obvious ones).
    """
    flat = [t.value for t in stmt if t.kind == "id"]
    if not flat:
        return []
    if flat[0] in _SKIP_STATEMENT_LEADS or "friend" in flat[:2]:
        return []
    if "static" in flat or "constexpr" in flat:
        return []    # not per-instance state
    is_const = "const" in flat
    is_mutable = "mutable" in flat

    members: List[Member] = []
    angle = 0
    skipping_init = False
    depth = 0  # (), {}, [] nesting inside the statement
    prev: Optional[Tok] = None
    for i, t in enumerate(stmt):
        nxt = stmt[i + 1] if i + 1 < len(stmt) else None
        if t.kind == "punct":
            if t.value in ("(", "{", "["):
                depth += 1
            elif t.value in (")", "}", "]"):
                depth -= 1
            elif t.value == "=" and depth == 0 and angle == 0:
                skipping_init = True
            elif t.value == "," and depth == 0 and angle == 0:
                skipping_init = False
            elif not skipping_init and depth == 0:
                if t.value == "<" and _angle_tracks(prev):
                    angle += 1
                elif t.value == ">" and angle > 0:
                    angle -= 1
                elif t.value == ">>" and angle > 0:
                    angle = max(0, angle - 2)
        elif (t.kind == "id" and not skipping_init and depth == 0
              and angle == 0 and t.value not in _NOT_MEMBER_NAMES):
            terminator = (nxt is None
                          or (nxt.kind == "punct"
                              and nxt.value in (";", "=", "{", "[",
                                                ",", ":")))
            qualified = (prev is not None and prev.kind == "punct"
                         and prev.value == "::")
            if terminator and not qualified:
                members.append(Member(t.value, t.line, is_const,
                                      is_mutable))
        prev = t
    return members


def _first_toplevel_paren(stmt: List[Tok]) -> int:
    """Index of the first '(' outside template angles, or -1."""
    angle = 0
    prev: Optional[Tok] = None
    for i, t in enumerate(stmt):
        if t.kind == "punct":
            if t.value == "<" and _angle_tracks(prev):
                angle += 1
            elif t.value == ">" and angle > 0:
                angle -= 1
            elif t.value == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif t.value == "(" and angle == 0:
                return i
        prev = t
    return -1


def _method_name(stmt: List[Tok], paren: int) -> Optional[str]:
    if paren == 0:
        return None
    t = stmt[paren - 1]
    if t.kind == "id":
        return t.value
    if t.kind == "punct" and paren >= 2:
        before = stmt[paren - 2]
        if before.kind == "id" and before.value == "operator":
            return "operator" + t.value
    return None


def _parse_class_body(toks: List[Tok], start: int, end: int,
                      decl: ClassDecl, path: str,
                      out: List[ClassDecl]) -> None:
    """Parse tokens of one class body (exclusive of its braces)."""
    i = start
    stmt: List[Tok] = []
    while i < end:
        t = toks[i]
        if (t.kind == "id" and t.value in _ACCESS and i + 1 < end
                and toks[i + 1].kind == "punct"
                and toks[i + 1].value == ":"):
            stmt = []
            i += 2
            continue
        if t.kind == "pp":
            i += 1
            continue
        if t.kind == "punct" and t.value == ";":
            values = [x.value for x in stmt if x.kind == "id"]
            if values and values[0] not in ("class", "struct", "enum"):
                paren = _first_toplevel_paren(stmt)
                if paren >= 0:
                    name = _method_name(stmt, paren)
                    if name:
                        decl.methods.add(name)
                else:
                    decl.members.extend(_member_names(stmt))
            stmt = []
            i += 1
            continue
        if t.kind == "punct" and t.value == "{":
            values = [x.value for x in stmt if x.kind == "id"]
            close = _match_brace(toks, i)
            if values and values[0] == "enum":
                i = close + 1       # enum body; declarators till ';'
                continue
            if values and values[0] in ("class", "struct", "union"):
                nested = _parse_class_at(toks, stmt, i, close, path,
                                         decl.qualname, out)
                if nested is not None:
                    decl.nested.append(nested.qualname)
                stmt = []           # `} name_;` declarators still land
                i = close + 1       # in the next ';' pass as members
                continue
            paren = _first_toplevel_paren(stmt)
            has_init = any(x.kind == "punct" and x.value == "="
                           for x in stmt)
            if paren >= 0 and not has_init:
                # Inline method definition.
                name = _method_name(stmt, paren)
                if name:
                    decl.methods.add(name)
                stmt = []
                i = close + 1
                continue
            # Brace initializer (`int x_{0};` / `T y_ = {..};`): treat
            # the braces as part of the statement and keep collecting.
            i = close + 1
            continue
        stmt.append(t)
        i += 1
    # Trailing statement without ';' (malformed): ignore.


def _parse_class_at(toks: List[Tok], head: List[Tok], open_brace: int,
                    close_brace: int, path: str, scope: str,
                    out: List[ClassDecl]) -> Optional[ClassDecl]:
    """``head`` holds tokens from 'class'/'struct' up to '{'."""
    name = None
    for i, t in enumerate(head):
        if t.kind == "id" and t.value in ("class", "struct", "union"):
            for t2 in head[i + 1:]:
                if t2.kind == "punct" and t2.value in (":", "{"):
                    break
                if t2.kind == "id" and t2.value not in ("final",
                                                        "alignas"):
                    name = t2.value
                # stop at the first name; base list ids come after ':'
                if name:
                    break
            break
    if not name:
        return None      # anonymous aggregate
    qual = f"{scope}::{name}" if scope else name
    decl = ClassDecl(name=name, qualname=qual, line=head[0].line,
                     path=path, members=[], methods=set(), nested=[])
    out.append(decl)
    _parse_class_body(toks, open_brace + 1, close_brace, decl, path,
                      out)
    return decl


def _namespace_name(toks: List[Tok], i: int):
    """After toks[i]=='namespace', return (name, index_of_brace) or
    (None, advance_index) when it is not a namespace definition."""
    parts = []
    j = i + 1
    n = len(toks)
    while j < n:
        t = toks[j]
        if t.kind == "id":
            parts.append(t.value)
            j += 1
        elif t.kind == "punct" and t.value == "::":
            j += 1
        elif t.kind == "punct" and t.value == "{":
            return "::".join(parts), j
        else:        # alias (`namespace x = y;`) or using-directive
            return None, j
    return None, j


def parse_classes(toks: List[Tok], path: str) -> List[ClassDecl]:
    """Every class/struct definition in the token stream."""
    out: List[ClassDecl] = []
    _scan_scope(toks, 0, len(toks), "", path, out, None)
    return out


def parse_function_defs(toks: List[Tok], path: str) -> List[FuncDef]:
    """Every namespace-scope function definition."""
    out: List[FuncDef] = []
    _scan_scope(toks, 0, len(toks), "", path, [], out)
    return out


def _scan_scope(toks: List[Tok], start: int, end: int, scope: str,
                path: str, classes: List[ClassDecl],
                funcs: Optional[List[FuncDef]]) -> None:
    """Walk one namespace scope, recursing into nested namespaces."""
    i = start
    stmt: List[Tok] = []
    while i < end:
        t = toks[i]
        if t.kind == "pp":
            i += 1
            continue
        if t.kind == "id" and t.value == "namespace" and not stmt:
            name, j = _namespace_name(toks, i)
            if name is None:
                while j < end and not (toks[j].kind == "punct"
                                       and toks[j].value == ";"):
                    j += 1
                i = j + 1
                continue
            close = _match_brace(toks, j)
            inner = (f"{scope}::{name}" if scope and name
                     else (name or scope))
            _scan_scope(toks, j + 1, close, inner, path, classes,
                        funcs)
            i = close + 1
            continue
        if t.kind == "punct" and t.value == ";":
            stmt = []
            i += 1
            continue
        if t.kind == "punct" and t.value == "{":
            close = _match_brace(toks, i)
            values = [x.value for x in stmt if x.kind == "id"]
            if values and values[0] == "enum":
                i = close + 1
                continue
            if any(v in ("class", "struct", "union") for v in values):
                _parse_class_at(toks, stmt, i, close, path, scope,
                                classes)
                stmt = []
                i = close + 1
                continue
            paren = _first_toplevel_paren(stmt)
            if paren >= 0 and funcs is not None:
                qual = _qualified_name_before(stmt, paren)
                if qual:
                    params = _params_of(stmt, paren)
                    out_body = toks[i + 1:close]
                    funcs.append(FuncDef(
                        qualname=(f"{scope}::{qual}" if scope
                                  else qual),
                        line=stmt[0].line, params=params,
                        body=out_body))
            stmt = []
            i = close + 1
            continue
        stmt.append(t)
        i += 1


def _qualified_name_before(stmt: List[Tok], paren: int) -> Optional[str]:
    """Trailing ``A::B::name`` chain ending right before ``paren``."""
    parts: List[str] = []
    j = paren - 1
    expect_id = True
    while j >= 0:
        t = stmt[j]
        if expect_id and t.kind == "id":
            parts.append(t.value)
            expect_id = False
            j -= 1
        elif (not expect_id and t.kind == "punct"
              and t.value == "::"):
            expect_id = True
            j -= 1
        else:
            break
    if not parts or expect_id:
        return None
    return "::".join(reversed(parts))


def _params_of(stmt: List[Tok], paren: int) -> List[Tok]:
    depth = 0
    out = []
    for t in stmt[paren:]:
        if t.kind == "punct" and t.value == "(":
            depth += 1
            if depth == 1:
                continue
        if t.kind == "punct" and t.value == ")":
            depth -= 1
            if depth == 0:
                break
        if depth >= 1:
            out.append(t)
    return out


def classes_in_file(path, relpath: str) -> List[ClassDecl]:
    return parse_classes(lex_file(path), relpath)


def function_defs_in_file(path, relpath: str) -> List[FuncDef]:
    return parse_function_defs(lex_file(path), relpath)
