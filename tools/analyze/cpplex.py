"""Token-aware C++ lexer shared by tools/analyze and tools/lint.

The project's checkers used to be regex-over-raw-lines with hand-tuned
guards against comments and string literals; every new rule re-solved
the same false-positive problems.  This module solves them once: it
turns a translation unit into a flat token stream with comments gone
and string/char literals kept as single tokens, so checkers match
structure instead of text.

Deliberately *not* a C++ parser: no preprocessing (macros are left as
identifiers), no semantic analysis.  Just enough lexical structure for
project rules:

  - kinds: ``id`` (identifiers and keywords), ``num``, ``str``,
    ``chr``, ``punct`` (multi-char operators are single tokens, e.g.
    ``::``, ``->``, ``<<``), and ``pp`` (a whole preprocessor
    directive, line continuations folded).
  - ``//`` and ``/* */`` comments are dropped.
  - raw strings ``R"delim(...)delim"`` are handled.
  - every token carries its 1-based source line.

The stream is line-faithful: ``Tok.line`` is where the token *starts*,
so violations report real locations.
"""

from __future__ import annotations

from typing import List, NamedTuple


class Tok(NamedTuple):
    kind: str  # id | num | str | chr | punct | pp
    value: str
    line: int


# Longest-first so "::" wins over ":", "->" over "-", "<<=" over "<<".
_PUNCTS = (
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
    "(", ")", "[", "]", "{", "}", "<", ">", ";", ":", ",", ".", "?",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "=",
)

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


def lex(text: str) -> List[Tok]:
    """Tokenize C++ source ``text``; comments vanish, literals fold."""
    toks: List[Tok] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Preprocessor directive: swallow the logical line (with \
        # continuations) into one 'pp' token.
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            toks.append(Tok("pp", text[start:i], start_line))
            continue

        at_line_start = False

        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end < 0:
                    end = n
                line += text.count("\n", i, end)
                i = min(end + 2, n)
                continue

        # Raw string literal: R"delim( ... )delim"
        if c == "R" and text[i:i + 2] == 'R"':
            close_paren = text.find("(", i + 2)
            if close_paren >= 0 and close_paren - (i + 2) <= 16:
                delim = text[i + 2:close_paren]
                terminator = ")" + delim + '"'
                end = text.find(terminator, close_paren + 1)
                if end >= 0:
                    start_line = line
                    end += len(terminator)
                    line += text.count("\n", i, end)
                    toks.append(Tok("str", text[i:end], start_line))
                    i = end
                    continue

        # Ordinary string / char literal (prefixes like u8"", L'' are
        # lexed as an id token followed by the literal, which is fine
        # for every checker we have).
        if c == '"' or c == "'":
            quote = c
            start = i
            start_line = line
            i += 1
            while i < n:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == "\n":  # unterminated; be forgiving
                    break
                if text[i] == quote:
                    i += 1
                    break
                i += 1
            toks.append(Tok("str" if quote == '"' else "chr",
                            text[start:i], start_line))
            continue

        # Identifier / keyword.
        if c in _ID_START:
            start = i
            while i < n and text[i] in _ID_CONT:
                i += 1
            toks.append(Tok("id", text[start:i], line))
            continue

        # Number (good enough: digits, hex, separators, suffixes,
        # exponent signs).
        if c in _DIGITS or (c == "." and i + 1 < n
                            and text[i + 1] in _DIGITS):
            start = i
            i += 1
            while i < n:
                ch = text[i]
                if ch in _ID_CONT or ch in "'.":
                    i += 1
                elif ch in "+-" and text[i - 1] in "eEpP":
                    i += 1
                else:
                    break
            toks.append(Tok("num", text[start:i], line))
            continue

        # Punctuation, longest match first.
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            # Unknown byte (e.g. backslash outside a directive): skip.
            i += 1

    return toks


def lex_file(path) -> List[Tok]:
    return lex(path.read_text(encoding="utf-8"))
