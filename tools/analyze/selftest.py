#!/usr/bin/env python3
"""Self-tests for the pfsim-analyze suite (ctest: analyze.selftest).

Every layer is exercised against fixtures with *known* violations and
known-clean near-misses, so a regression in the lexer, the declaration
parser or a checker fails here — not by silently passing a broken tree.
The key negative test: adding an unserialized member to a fixture class
must fail the snapshot checker.
"""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_determinism     # noqa: E402
import check_registry        # noqa: E402
import check_snapshot        # noqa: E402
import cppdecl               # noqa: E402
import cpplex                # noqa: E402
from suppress import Suppressions, SuppressionError  # noqa: E402


class Fixture:
    """A throwaway repo tree: write files, run a checker, inspect."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)

    def write(self, rel: str, text: str) -> pathlib.Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def cleanup(self):
        self._tmp.cleanup()


class LexerTests(unittest.TestCase):
    def test_comments_vanish_strings_fold(self):
        toks = cpplex.lex(
            'int x = 1; // new Foo\n'
            '/* delete y */ const char* s = "std::thread";\n')
        values = [t.value for t in toks if t.kind == "id"]
        self.assertNotIn("new", values)
        self.assertNotIn("delete", values)
        strs = [t for t in toks if t.kind == "str"]
        self.assertEqual([s.value for s in strs], ['"std::thread"'])
        self.assertEqual(strs[0].line, 2)

    def test_raw_string_and_pp(self):
        toks = cpplex.lex('#include <deque>\n'
                          'auto r = R"(rand( fatal( )";\n')
        self.assertEqual(toks[0].kind, "pp")
        self.assertIn("<deque>", toks[0].value)
        self.assertNotIn("rand",
                         [t.value for t in toks if t.kind == "id"])

    def test_multichar_punct_and_lines(self):
        toks = cpplex.lex("a::b\n->c <<= d;")
        puncts = [t.value for t in toks if t.kind == "punct"]
        self.assertEqual(puncts, ["::", "->", "<<=", ";"])
        arrow = next(t for t in toks if t.value == "->")
        self.assertEqual(arrow.line, 2)

    def test_continuation_in_directive(self):
        toks = cpplex.lex("#define M(x) \\\n  ((x) + 1)\nint y;\n")
        self.assertEqual(toks[0].kind, "pp")
        self.assertIn("(x) + 1", toks[0].value)
        self.assertEqual([t.value for t in toks if t.kind == "id"],
                         ["int", "y"])


HEADER_FIXTURE = """
#pragma once
#include <cstdint>
namespace pfsim::cache {
class Cache {
 public:
  void serialize(snapshot::Sink& sink) const;
  void deserialize(snapshot::Source& src);
  void tick();
  struct Entry {
    uint64_t addr_ = 0;
    bool valid_{false};
  };
 private:
  static constexpr int kWays = 8;
  const uint64_t setMask_ = 0;
  mutable uint64_t probes_ = 0;
  uint64_t hits_ = 0;
  std::vector<Entry> entries_;
};
uint64_t freeHelper(const Cache& c);
}
"""


class DeclTests(unittest.TestCase):
    def setUp(self):
        self.classes = cppdecl.parse_classes(
            cpplex.lex(HEADER_FIXTURE), "src/cache/cache.hh")

    def decl(self, qual):
        return next(c for c in self.classes if c.qualname == qual)

    def test_members_methods_nested(self):
        cache = self.decl("pfsim::cache::Cache")
        names = {m.name for m in cache.members}
        self.assertEqual(names, {"setMask_", "probes_", "hits_",
                                 "entries_"})
        self.assertNotIn("kWays", names)    # static constexpr skipped
        self.assertLessEqual({"serialize", "deserialize", "tick"},
                             cache.methods)
        self.assertIn("pfsim::cache::Cache::Entry", cache.nested)
        entry = self.decl("pfsim::cache::Cache::Entry")
        self.assertEqual({m.name for m in entry.members},
                         {"addr_", "valid_"})

    def test_const_mutable_flags(self):
        cache = self.decl("pfsim::cache::Cache")
        by_name = {m.name: m for m in cache.members}
        self.assertTrue(by_name["setMask_"].is_const)
        self.assertTrue(by_name["probes_"].is_mutable)
        self.assertFalse(by_name["hits_"].is_const)

    def test_function_defs(self):
        toks = cpplex.lex(
            "namespace pfsim::cache {\n"
            "void Cache::serialize(snapshot::Sink& sink) const {\n"
            "  sink.u64(hits_);\n}\n"
            "}\n"
            "namespace {\n"
            "void writeEntry(Sink& s, const cache::Request& r) {}\n"
            "}\n")
        defs = cppdecl.parse_function_defs(toks, "x.cc")
        quals = {d.qualname for d in defs}
        self.assertIn("pfsim::cache::Cache::serialize", quals)
        self.assertIn("writeEntry", quals)
        ser = next(d for d in defs
                   if d.qualname.endswith("::serialize"))
        self.assertIn("hits_", {t.value for t in ser.body
                                if t.kind == "id"})


class SuppressTests(unittest.TestCase):
    def test_reason_mandatory(self):
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        path = fx.write("s.txt", "cache::Cache::x_\n")
        with self.assertRaises(SuppressionError):
            Suppressions(path)

    def test_duplicate_rejected(self):
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        path = fx.write("s.txt", "a::b_ why\na::b_ again\n")
        with self.assertRaises(SuppressionError):
            Suppressions(path)

    def test_unused_tracking(self):
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        sup = Suppressions(fx.write("s.txt", "# c\nused why\nidle why\n"))
        self.assertTrue(sup.match("used"))
        self.assertFalse(sup.match("absent"))
        self.assertEqual([k for k, _ in sup.unused()], ["idle"])


SNAP_HEADER = """
#pragma once
namespace pfsim::ppf {{
class Table {{
 public:
  void serialize(snapshot::Sink& sink) const;
  void deserialize(snapshot::Source& source);
 private:
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;{extra_member}
}};
}}
"""

SNAP_IO = """
#include "ppf/table.hh"
namespace pfsim::ppf {{
void Table::serialize(snapshot::Sink& sink) const {{
  sink.u64(hits_);
  sink.u64(misses_);{ser_extra}
}}
void Table::deserialize(snapshot::Source& source) {{
  hits_ = source.u64();
  misses_ = source.u64();{deser_extra}
}}
}}
"""


class SnapshotCheckerTests(unittest.TestCase):
    def build(self, extra_member="", ser_extra="", deser_extra="",
              suppressions=None, io_text=None, header_text=None):
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        fx.write("src/ppf/table.hh", header_text or SNAP_HEADER.format(
            extra_member=extra_member))
        io = fx.write("src/snapshot/state_io.cc",
                      io_text or SNAP_IO.format(ser_extra=ser_extra,
                                                deser_extra=deser_extra))
        sup = fx.root / "sup.txt"
        if suppressions is not None:
            sup.write_text(suppressions, encoding="utf-8")
        return check_snapshot.check(fx.root, state_io=io,
                                    suppressions_path=sup)

    def test_complete_class_is_clean(self):
        self.assertEqual(self.build(), [])

    def test_new_member_without_serialization_fails(self):
        # THE acceptance test: add a member, persist nothing -> caught.
        violations = self.build(extra_member="\n  uint64_t epoch_ = 0;")
        self.assertEqual(len(violations), 1)
        path, line, rule, detail = violations[0]
        self.assertEqual(rule, "snapshot-completeness")
        self.assertIn("ppf::Table::epoch_", detail)
        self.assertIn("not referenced", detail)

    def test_member_missing_from_one_direction(self):
        violations = self.build(
            extra_member="\n  uint64_t epoch_ = 0;",
            ser_extra="\n  sink.u64(epoch_);")
        self.assertEqual(len(violations), 1)
        self.assertIn("never restored", violations[0][3])

    def test_suppression_with_reason_covers(self):
        violations = self.build(
            extra_member="\n  uint64_t epoch_ = 0;",
            suppressions="ppf::Table::epoch_ rebuilt from config\n")
        self.assertEqual(violations, [])

    def test_stale_suppression_is_a_violation(self):
        violations = self.build(
            suppressions="ppf::Table::gone_ member was deleted\n")
        self.assertEqual(len(violations), 1)
        self.assertIn("stale suppression", violations[0][3])

    def test_one_direction_only(self):
        io = ("namespace pfsim::ppf {\n"
              "void Table::serialize(snapshot::Sink& sink) const {\n"
              "  sink.u64(hits_); sink.u64(misses_);\n}\n}\n")
        violations = self.build(io_text=io)
        self.assertEqual(len(violations), 1)
        self.assertIn("not deserialize()", violations[0][3])

    def test_helper_pair_member_gap(self):
        header = ("#pragma once\n"
                  "namespace pfsim::cache {\n"
                  "struct Request { uint64_t addr = 0; int kind = 0; };\n"
                  "}\n")
        io = ("namespace pfsim::snapshot {\n"
              "void writeRequest(Sink& sink, const cache::Request& r) {\n"
              "  sink.u64(r.addr); sink.u32(r.kind);\n}\n"
              "void readRequest(Source& src, cache::Request& r) {\n"
              "  r.addr = src.u64();\n}\n}\n")
        violations = self.build(header_text=header, io_text=io)
        self.assertEqual(len(violations), 1)
        self.assertIn("cache::Request::kind", violations[0][3])
        self.assertIn("never restored", violations[0][3])

    def test_wire_io_second_tu_is_checked(self):
        # The sweep service's result-slot codecs (wire.cc) are held to
        # the same member-completeness bar as machine snapshots.
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        fx.write("src/ppf/table.hh", SNAP_HEADER.format(extra_member=""))
        io = fx.write("src/snapshot/state_io.cc",
                      SNAP_IO.format(ser_extra="", deser_extra=""))
        fx.write("src/sim/service/stats.hh",
                 "#pragma once\nnamespace pfsim::service {\n"
                 "struct JobReport { uint64_t ipc = 0;"
                 " int faults = 0; };\n}\n")
        fx.write("src/sim/service/wire.cc",
                 "namespace pfsim::service {\n"
                 "void writeJobReport(snapshot::Sink& sink,"
                 " const service::JobReport& r) {\n"
                 "  sink.u64(r.ipc); sink.u32(r.faults);\n}\n"
                 "void readJobReport(snapshot::Source& src,"
                 " service::JobReport& r) {\n"
                 "  r.ipc = src.u64();\n}\n}\n")
        violations = check_snapshot.check(
            fx.root, state_io=io,
            suppressions_path=fx.root / "sup.txt")
        self.assertEqual(len(violations), 1)
        path, _line, rule, detail = violations[0]
        self.assertEqual(rule, "snapshot-completeness")
        self.assertEqual(path, "src/sim/service/stats.hh")
        self.assertIn("JobReport::faults", detail)
        self.assertIn("never restored", detail)
        self.assertIn("src/sim/service/wire.cc", detail)

    def test_wire_io_one_way_helper(self):
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        fx.write("src/ppf/table.hh", SNAP_HEADER.format(extra_member=""))
        io = fx.write("src/snapshot/state_io.cc",
                      SNAP_IO.format(ser_extra="", deser_extra=""))
        fx.write("src/sim/service/stats.hh",
                 "#pragma once\nnamespace pfsim::service {\n"
                 "struct JobReport { uint64_t ipc = 0; };\n}\n")
        fx.write("src/sim/service/wire.cc",
                 "namespace pfsim::service {\n"
                 "void writeJobReport(snapshot::Sink& sink,"
                 " const service::JobReport& r) {\n"
                 "  sink.u64(r.ipc);\n}\n}\n")
        violations = check_snapshot.check(
            fx.root, state_io=io,
            suppressions_path=fx.root / "sup.txt")
        self.assertEqual(len(violations), 1)
        path, _line, _rule, detail = violations[0]
        self.assertEqual(path, "src/sim/service/wire.cc")
        self.assertIn("no matching read helper", detail)

    def test_partial_support_struct(self):
        header = SNAP_HEADER.format(extra_member=(
            "\n  struct Line { uint64_t tag_ = 0; bool dirty_ = false;"
            " };\n  Line line_;"))
        io = SNAP_IO.format(
            ser_extra="\n  sink.u64(line_.tag_);",
            deser_extra="\n  line_.tag_ = source.u64();")
        violations = self.build(header_text=header, io_text=io)
        self.assertEqual(len(violations), 1)
        self.assertIn("Table::Line::dirty_", violations[0][3])
        self.assertIn("sibling members", violations[0][3])


REG_HEADER = """
#pragma once
namespace pfsim::dram {{
class Dram {{
 public:
  void tick();{io_decls}
 private:
  uint64_t row_ = 0;
}};
}}
"""


class RegistryCheckerTests(unittest.TestCase):
    def build(self, io_decls="", registry="", exclusions="",
              header_text=None):
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        fx.write("src/dram/dram.hh", header_text or REG_HEADER.format(
            io_decls=io_decls))
        reg = fx.write("reg.txt", registry)
        exc = fx.write("exc.txt", exclusions)
        return check_registry.check(fx.root, registry_path=reg,
                                    exclusions_path=exc)

    def test_ticking_class_without_serialize_fails(self):
        violations = self.build()
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0][2], "state-registry")
        self.assertIn("dram::Dram", violations[0][3])
        self.assertIn("cycle-path", violations[0][3])

    def test_serialized_ticking_class_is_clean(self):
        decls = ("\n  void serialize(snapshot::Sink& sink) const;"
                 "\n  void deserialize(snapshot::Source& src);")
        self.assertEqual(self.build(io_decls=decls), [])

    def test_exclusion_with_reason_covers(self):
        violations = self.build(
            exclusions="dram::Dram host-side orchestration only\n")
        self.assertEqual(violations, [])

    def test_registry_flags_non_ticking_state(self):
        header = ("#pragma once\nnamespace pfsim::ppf {\n"
                  "class Weights { int w_ = 0; };\n}\n")
        violations = self.build(
            header_text=header,
            registry="ppf::Weights trained from the operate path\n")
        self.assertEqual(len(violations), 1)
        self.assertIn("registered as state-bearing", violations[0][3])

    def test_registry_entry_for_missing_class_is_stale(self):
        decls = ("\n  void serialize(snapshot::Sink& sink) const;"
                 "\n  void deserialize(snapshot::Source& src);")
        violations = self.build(
            io_decls=decls,
            registry="dram::Gone deleted two PRs ago\n")
        self.assertEqual(len(violations), 1)
        self.assertIn("stale registry entry", violations[0][3])

    def test_stale_exclusion_is_a_violation(self):
        decls = ("\n  void serialize(snapshot::Sink& sink) const;"
                 "\n  void deserialize(snapshot::Source& src);")
        violations = self.build(
            io_decls=decls,
            exclusions="dram::Dram no longer needs excluding\n")
        self.assertEqual(len(violations), 1)
        self.assertIn("stale exclusion", violations[0][3])


class DeterminismCheckerTests(unittest.TestCase):
    def build(self, files, allowlist=""):
        fx = Fixture()
        self.addCleanup(fx.cleanup)
        for rel, text in files.items():
            fx.write(rel, text)
        allow = fx.write("allow.txt", allowlist)
        return check_determinism.check(fx.root, allowlist_path=allow)

    def test_wall_clock_flagged_and_allowlisted(self):
        src = ("void f() { auto t0 ="
               " std::chrono::steady_clock::now(); }\n")
        violations = self.build({"src/sim/mips.cc": src})
        self.assertEqual([v[2] for v in violations], ["wall-clock"])
        clean = self.build(
            {"src/sim/mips.cc": src},
            allowlist="wall-clock src/sim/mips.cc MIPS telemetry\n")
        self.assertEqual(clean, [])

    def test_stale_allowlist_entry(self):
        violations = self.build(
            {"src/sim/mips.cc": "void f() {}\n"},
            allowlist="wall-clock src/sim/mips.cc MIPS telemetry\n")
        self.assertEqual(len(violations), 1)
        self.assertIn("stale allowlist", violations[0][3])

    def test_pointer_identity(self):
        src = ('void f(void* p) {\n'
               '  printf("%p", p);\n'
               '  auto k = reinterpret_cast<uintptr_t>(p);\n'
               '  std::hash<Node*> h;\n}\n')
        violations = self.build({"src/util/dbg.cc": src})
        self.assertEqual([v[2] for v in violations],
                         ["pointer-identity"] * 3)

    def test_hash_of_value_type_is_clean(self):
        src = "std::hash<std::string> h;\n"
        self.assertEqual(self.build({"src/util/h.cc": src}), [])

    def test_unordered_iteration_escape(self):
        src = ("#include <unordered_map>\n"
               "std::unordered_map<int, int> table_;\n"
               "void dump(std::ostream& os) {\n"
               "  for (const auto& kv : table_) { os << kv.first; }\n"
               "}\n")
        violations = self.build({"src/stats/dump.cc": src})
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0][2], "unordered-escape")
        self.assertIn("table_", violations[0][3])

    def test_unordered_accumulation_is_clean(self):
        src = ("std::unordered_map<int, int> table_;\n"
               "int total() {\n"
               "  int s = 0;\n"
               "  for (const auto& kv : table_) s += kv.second;\n"
               "  return s;\n}\n")
        self.assertEqual(self.build({"src/stats/sum.cc": src}), [])

    def test_ordered_map_escape_is_clean(self):
        src = ("std::map<int, int> table_;\n"
               "void dump(std::ostream& os) {\n"
               "  for (const auto& kv : table_) { os << kv.first; }\n"
               "}\n")
        self.assertEqual(self.build({"src/stats/omap.cc": src}), [])

    def test_journal_wall_clock_not_allowlistable(self):
        # Journal records must replay identically: an allowlist entry
        # naming the journal writer is ignored for wall-clock findings.
        src = ("void stamp() { auto t ="
               " std::chrono::steady_clock::now(); }\n")
        violations = self.build(
            {"src/sim/service/journal.cc": src},
            allowlist="wall-clock src/sim/service/journal.cc nope\n")
        forced = [v for v in violations if v[2] == "wall-clock"]
        self.assertEqual(len(forced), 1)
        self.assertIn("not allowlistable", forced[0][3])
        # ...and the pointless allowlist entry is reported as stale.
        self.assertTrue(any("stale allowlist" in v[3]
                            for v in violations))

    def test_service_wall_clock_still_allowlistable(self):
        src = ("void poll() { auto t ="
               " std::chrono::steady_clock::now(); }\n")
        clean = self.build(
            {"src/sim/service/service.cc": src},
            allowlist="wall-clock src/sim/service/service.cc "
                      "watchdog deadlines\n")
        self.assertEqual(clean, [])

    def test_unordered_banned_in_snapshot(self):
        src = "std::unordered_map<int, int> ids_;\n"
        violations = self.build({"src/snapshot/reg.cc": src})
        self.assertEqual(len(violations), 1)
        self.assertIn("src/snapshot", violations[0][3])


if __name__ == "__main__":
    unittest.main(verbosity=2)
