"""Reviewed suppression files for the analyzers.

One format for every checker: a line is

    <key>  <reason...>

where ``<key>`` is checker-specific (``cache::Cache::config_`` for the
snapshot checker, ``wall-clock src/sim/runner.cc`` uses two key fields
for the determinism checker) and ``<reason>`` is mandatory free text —
a suppression without a written reason is itself an error, which is
what makes the file reviewable.  ``#`` starts a comment; blank lines
are ignored.

Unused suppressions are errors too: when the code a suppression
excused goes away, the entry must go with it, so the file never
accumulates dead excuses that later mask real violations.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Tuple


class SuppressionError(Exception):
    pass


class Suppressions:
    def __init__(self, path: pathlib.Path, key_fields: int = 1):
        self.path = path
        self._entries: Dict[str, Tuple[int, str]] = {}
        self._used: set = set()
        if not path.exists():
            return
        for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, key_fields)
            if len(parts) <= key_fields:
                raise SuppressionError(
                    f"{path}:{lineno}: suppression for "
                    f"'{parts[0] if parts else ''}' carries no reason "
                    f"(format: <key> <why it is exempt>)")
            key = " ".join(parts[:key_fields])
            reason = parts[key_fields].strip()
            if key in self._entries:
                raise SuppressionError(
                    f"{path}:{lineno}: duplicate suppression '{key}'")
            self._entries[key] = (lineno, reason)

    def match(self, key: str) -> bool:
        if key in self._entries:
            self._used.add(key)
            return True
        return False

    def reason(self, key: str) -> str:
        return self._entries[key][1]

    def entries(self) -> Dict[str, Tuple[int, str]]:
        return dict(self._entries)

    def unused(self) -> List[Tuple[str, int]]:
        return sorted((k, ln) for k, (ln, _r) in self._entries.items()
                      if k not in self._used)
