#!/usr/bin/env python3
"""pfsim project-rule linter.

Enforces rules the compiler cannot, run as a CTest (lint.project_rules):

  1. No raw ``new`` / ``delete`` outside src/util — ownership lives in
     smart pointers and containers everywhere else.
  2. No ``rand()`` / ``srand()`` — all randomness goes through
     util/random.hh so runs stay seed-reproducible.
  3. Every ``fatal()`` / ``panic()`` call carries a non-empty message.
  4. Every header under src/ is self-contained: it compiles alone
     (checked with ``$CXX -fsyntax-only``).  Results are cached under
     ``--cache-dir`` keyed by the content of the header's project
     include closure plus the compiler identity, and cache misses
     compile in parallel — an unchanged tree re-lints in milliseconds.
  5. No raw ``std::thread`` / ``std::jthread`` outside src/util,
     src/sim/parallel.* and src/sim/service (the worker heartbeat
     thread) — concurrency goes through the job pool
     (util/thread_pool.hh) so sweeps stay deterministic and exception
     handling is solved once.  ``std::thread::hardware_concurrency``
     and ``std::this_thread`` are allowed everywhere.
  6. ``faultInject*`` hooks are called only from src/fault (and from
     tests) — the hardware model must never perturb itself.  Header
     files are exempt (that is where the hooks are declared), and
     ``Class::faultInjectX`` definitions in the owning .cc are not
     calls.
  7. No ``std::deque`` in src/cache or src/dram — the simulation
     kernel's hot queues use util/ring_buffer.hh, which keeps entries
     contiguous and allocation-free in the steady state
     (``std::priority_queue`` over a vector remains fine).
  8. Raw file I/O on simulator state — ``fopen`` or the
     ``<fstream>`` family inside src/ — is confined to src/snapshot,
     the one subsystem allowed to persist and reload machine state.
     Existing non-state I/O keeps its exemption: trace/file_trace.cc
     (trace ingest) and stats/perf_report.cc (report emission).
     fprintf/fputs on already-open streams (stdout/stderr logging) are
     not file I/O and never match.  Tests, benches and tools are
     exempt.
  9. SIMD intrinsics headers (``<immintrin.h>`` and friends) are
     included only by src/core/simd.hh, the one header that wraps the
     vector kernels behind a scalar-equivalent interface.  Everything
     else — including tests and benches — programs against simd.hh, so
     a kernel change or a new architecture touches exactly one file.
 10. Process management — ``fork``/``exec*``/``waitpid``/``pipe``/
     ``dup2``/``kill`` calls — is confined to src/sim/service (the
     crash-isolated sweep service) and tests.  Everything else runs
     in-process; one subsystem owns worker lifecycles, pipe plumbing
     and signal delivery, so crash-handling policy cannot fork (pun
     intended) across the tree.  Qualified member calls
     (``sup.kill(...)``, ``Supervisor::kill``) are other functions and
     never match.
 11. The event-wheel scheduler (``EventWheel``, sim/event_wheel.hh) is
     referenced only from src/sim and tests — components influence
     their own schedule exclusively through ``nextEventCycle()`` and
     the ``util::TickWaker`` wakeup hook, so scheduling policy cannot
     leak into the hardware model.

The text rules run on the token stream produced by the shared lexer
(tools/analyze/cpplex.py): comments are gone and string/char literals
are single tokens before any rule looks at the code, so none of the
rules needs its own comment/string false-positive guards, and prose
like "a new instruction" or a quoted "std::thread" can never match.

Exit status is non-zero when any rule is violated; each violation is
reported as ``file:line: rule: detail``.
"""

import argparse
import concurrent.futures
import hashlib
import os
import pathlib
import re
import subprocess
import sys

sys.path.insert(0, str(pathlib.Path(
    __file__).resolve().parents[1] / "analyze"))

import cpplex  # noqa: E402

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
CXX_SUFFIXES = {".cc", ".hh"}

INCLUDE_RE = re.compile(r'#\s*include\s*["<]([^">]+)[">]')


def iter_source_files(root: pathlib.Path):
    for top in SOURCE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def _tok_at(toks, i):
    return toks[i] if 0 <= i < len(toks) else None


def _value(tok):
    return tok.value if tok is not None else None


INTRINSICS_HEADERS = (
    "<immintrin.h>", "<emmintrin.h>", "<xmmintrin.h>",
    "<pmmintrin.h>", "<tmmintrin.h>", "<smmintrin.h>",
    "<nmmintrin.h>", "<wmmintrin.h>", "<avxintrin.h>",
    "<avx2intrin.h>", "<x86intrin.h>", "<x86gprintrin.h>",
    "<arm_neon.h>", "<arm_sve.h>",
)


PROCESS_CALLS = (
    "fork", "vfork", "execv", "execve", "execvp", "execl", "execlp",
    "execle", "execvpe", "waitpid", "pipe", "pipe2", "dup2", "kill",
)


def check_file_tokens(rel: pathlib.PurePath, toks):
    """Apply rules 1-3 and 5-10 to one file's token stream."""
    violations = []
    in_util = rel.parts[:2] == ("src", "util")
    in_service = rel.parts[:3] == ("src", "sim", "service")
    may_thread = in_util or in_service or (
        rel.parts[:2] == ("src", "sim")
        and rel.name.startswith("parallel."))
    may_process = in_service or rel.parts[0] == "tests"
    may_fault_inject = (rel.parts[0] == "tests"
                        or rel.parts[:2] == ("src", "fault")
                        or rel.suffix == ".hh")
    hot_queue_dir = rel.parts[:2] in (("src", "cache"),
                                      ("src", "dram"))
    may_file_io = (rel.parts[0] != "src"
                   or rel.parts[:2] == ("src", "snapshot")
                   or str(rel) in ("src/trace/file_trace.cc",
                                   "src/stats/perf_report.cc"))
    may_intrinsics = str(rel) == "src/core/simd.hh"
    may_wheel = (rel.parts[:2] == ("src", "sim")
                 or rel.parts[0] == "tests")

    for i, t in enumerate(toks):
        prev = _value(_tok_at(toks, i - 1))
        prev2 = _value(_tok_at(toks, i - 2))
        nxt = _value(_tok_at(toks, i + 1))

        if t.kind == "pp":
            directive = t.value
            if hot_queue_dir and "<deque>" in directive:
                violations.append(
                    (rel, t.line, "no-hot-deque",
                     "std::deque in src/cache|src/dram; the kernel's "
                     "hot queues use util/ring_buffer.hh"))
            if not may_file_io and "<fstream>" in directive:
                violations.append(
                    (rel, t.line, "file-io-confinement",
                     "raw file I/O in src/ belongs to src/snapshot; "
                     "persist simulator state through the checkpoint "
                     "store"))
            if (not may_intrinsics
                    and any(h in directive for h in INTRINSICS_HEADERS)):
                violations.append(
                    (rel, t.line, "intrinsics-confinement",
                     "SIMD intrinsics headers are included only by "
                     "src/core/simd.hh; program against its kernel "
                     "interface instead"))
            if not may_wheel and "sim/event_wheel.hh" in directive:
                violations.append(
                    (rel, t.line, "wheel-confinement",
                     "the event-wheel scheduler is private to "
                     "src/sim; components request ticks via "
                     "nextEventCycle() and util::TickWaker"))
            continue
        if t.kind != "id":
            continue

        # Rule 1 — raw allocation.  Any `new`/`delete` keyword token is
        # the real operator (comments and strings no longer exist at
        # this layer); `= delete` and `operator new/delete` are the
        # only non-allocating spellings.
        if not in_util:
            if t.value == "new" and prev != "operator":
                violations.append(
                    (rel, t.line, "no-raw-new",
                     "raw operator new outside src/util; use "
                     "std::make_unique or a container"))
            elif (t.value == "delete" and prev not in ("=", "operator")):
                violations.append(
                    (rel, t.line, "no-raw-delete",
                     "raw operator delete outside src/util"))

        # Rule 2 — rand()/srand(); qualified names (util::rand) and
        # member access (gen.rand()) are other functions.
        if (t.value in ("rand", "srand") and nxt == "("
                and prev not in (".", "->", "::")):
            violations.append(
                (rel, t.line, "no-rand",
                 "rand()/srand() is not seed-reproducible; use "
                 "util/random.hh"))

        # Rule 3 — fatal()/panic() with no message (or an empty
        # string literal).
        if t.value in ("fatal", "panic") and nxt == "(":
            after = _tok_at(toks, i + 2)
            after2 = _tok_at(toks, i + 3)
            if (_value(after) == ")"
                    or (after is not None and after.kind == "str"
                        and after.value == '""'
                        and _value(after2) == ")")):
                violations.append(
                    (rel, t.line, "empty-fatal-message",
                     "fatal()/panic() must explain what went wrong"))

        # Rule 5 — raw std::thread/std::jthread; static member access
        # (std::thread::hardware_concurrency) stays allowed, and
        # std::this_thread is a different token.
        if (not may_thread and t.value in ("thread", "jthread")
                and prev == "::" and prev2 == "std" and nxt != "::"):
            violations.append(
                (rel, t.line, "no-raw-thread",
                 "raw std::thread outside src/util, "
                 "src/sim/parallel.* and src/sim/service; run "
                 "concurrent work through ThreadPool/parallelFor "
                 "(util/thread_pool.hh)"))

        # Rule 10 — process management confined to the sweep service.
        # Member calls (sup.kill) and qualified member definitions
        # (Supervisor::kill) are other functions; ::kill at global
        # scope (prev2 not an identifier) is the real syscall.
        if (not may_process and t.value in PROCESS_CALLS
                and nxt == "(" and prev not in (".", "->")):
            prev2_tok = _tok_at(toks, i - 2)
            qualified_member = (prev == "::" and prev2_tok is not None
                                and prev2_tok.kind == "id")
            if not qualified_member:
                violations.append(
                    (rel, t.line, "process-confinement",
                     "fork/exec/pipe/kill process management belongs "
                     "to src/sim/service (the crash-isolated sweep "
                     "service); do not spawn or signal processes "
                     "elsewhere"))

        # Rule 11 — the scheduler type itself.  Any EventWheel token
        # outside src/sim (components naming the type to store, call
        # or befriend it) couples the hardware model to scheduling
        # policy; the nextEventCycle()/TickWaker seam is the only
        # sanctioned interface.
        if not may_wheel and t.value == "EventWheel":
            violations.append(
                (rel, t.line, "wheel-confinement",
                 "EventWheel is private to src/sim; components "
                 "request ticks via nextEventCycle() and "
                 "util::TickWaker"))

        # Rule 6 — faultInject* call sites; `Class::faultInjectX` is
        # the definition, not a call.
        if (not may_fault_inject and t.value.startswith("faultInject")
                and nxt == "(" and prev != "::"):
            violations.append(
                (rel, t.line, "fault-hook-confinement",
                 "faultInject* hooks may only be called from "
                 "src/fault (and tests); the model must not "
                 "perturb itself"))

        # Rule 7 — std::deque in the hot memory-system directories.
        if (hot_queue_dir and t.value == "deque" and prev == "::"
                and prev2 == "std"):
            violations.append(
                (rel, t.line, "no-hot-deque",
                 "std::deque in src/cache|src/dram; the kernel's "
                 "hot queues use util/ring_buffer.hh"))

        # Rule 8 — raw file I/O outside src/snapshot.
        if not may_file_io:
            if t.value == "fopen" and nxt == "(" and prev not in (
                    ".", "->"):
                violations.append(
                    (rel, t.line, "file-io-confinement",
                     "raw file I/O in src/ belongs to src/snapshot; "
                     "persist simulator state through the checkpoint "
                     "store"))
            elif (t.value in ("ifstream", "ofstream", "fstream")
                  and prev == "::" and prev2 == "std"):
                violations.append(
                    (rel, t.line, "file-io-confinement",
                     "raw file I/O in src/ belongs to src/snapshot; "
                     "persist simulator state through the checkpoint "
                     "store"))
    return violations


def check_text_rules(root: pathlib.Path):
    violations = []
    for path in iter_source_files(root):
        rel = path.relative_to(root)
        toks = cpplex.lex(path.read_text(encoding="utf-8"))
        violations.extend(check_file_tokens(rel, toks))
    return violations


# ---------------------------------------------------------------------
# Rule 4 — header self-containment, parallel with a content-hash cache.
# ---------------------------------------------------------------------

def _include_closure(root: pathlib.Path, header: pathlib.Path):
    """The header plus every project header it reaches transitively.

    Includes are resolved the way the check compiles them: against
    ``-I src`` and relative to the including file.  System headers
    resolve to nothing and simply do not contribute to the key.
    """
    src = root / "src"
    closure = []
    seen = set()
    stack = [header]
    while stack:
        current = stack.pop()
        if current in seen or not current.is_file():
            continue
        seen.add(current)
        text = current.read_text(encoding="utf-8")
        closure.append((current, text))
        for name in INCLUDE_RE.findall(text):
            for candidate in (src / name, current.parent / name):
                if candidate.is_file():
                    stack.append(candidate)
                    break
    closure.sort(key=lambda item: str(item[0]))
    return closure


def _compiler_identity(cxx: str) -> str:
    try:
        probe = subprocess.run([cxx, "--version"], capture_output=True,
                               text=True)
        first = probe.stdout.splitlines()
        return first[0] if first else cxx
    except OSError:
        return cxx


def _header_key(root, header, cxx_identity, std) -> str:
    digest = hashlib.sha256()
    digest.update(f"{cxx_identity}\n-std={std}\n".encode())
    for path, text in _include_closure(root, header):
        rel = path.relative_to(root)
        digest.update(f"{rel}\n".encode())
        digest.update(hashlib.sha256(text.encode()).digest())
    return digest.hexdigest()


def _compile_header(root, header, cxx, std):
    result = subprocess.run(
        [cxx, f"-std={std}", "-fsyntax-only", "-x", "c++",
         "-I", str(root / "src"), str(header)],
        capture_output=True, text=True)
    if result.returncode == 0:
        return None
    first = result.stderr.strip().splitlines()
    return first[0] if first else "does not compile alone"


def check_headers_self_contained(root: pathlib.Path, cxx: str,
                                 std: str, cache_dir: pathlib.Path,
                                 jobs: int):
    violations = []
    headers = sorted((root / "src").rglob("*.hh"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    cxx_identity = _compiler_identity(cxx)

    pending = []        # (header, key) needing a real compile
    for header in headers:
        key = _header_key(root, header, cxx_identity, std)
        cached = cache_dir / key
        if cached.is_file():
            text = cached.read_text(encoding="utf-8")
            if text != "ok\n":
                violations.append(
                    (header.relative_to(root), 1,
                     "header-not-self-contained",
                     text.split("\n", 1)[1].strip() or
                     "does not compile alone"))
        else:
            pending.append((header, key))

    if pending:
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=max(1, jobs)) as pool:
            details = pool.map(
                lambda item: _compile_header(root, item[0], cxx, std),
                pending)
        for (header, key), detail in zip(pending, details):
            cached = cache_dir / key
            if detail is None:
                cached.write_text("ok\n", encoding="utf-8")
            else:
                # Failures are cached too: the key covers the whole
                # include closure, so any fix changes the key.
                cached.write_text(f"fail\n{detail}\n",
                                  encoding="utf-8")
                violations.append(
                    (header.relative_to(root), 1,
                     "header-not-self-contained", detail))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("--cxx", default="c++",
                        help="compiler for the header self-containment "
                             "check (empty string skips it)")
    parser.add_argument("--std", default="c++20")
    parser.add_argument("--cache-dir", type=pathlib.Path, default=None,
                        help="header-check result cache (default: "
                             "<root>/build/lint_header_cache)")
    parser.add_argument("--jobs", type=int,
                        default=min(32, os.cpu_count() or 1),
                        help="parallel header compiles on cache miss")
    args = parser.parse_args()

    root = args.root.resolve()
    violations = check_text_rules(root)
    if args.cxx:
        cache_dir = (args.cache_dir
                     or root / "build" / "lint_header_cache")
        violations += check_headers_self_contained(
            root, args.cxx, args.std, cache_dir, args.jobs)

    for rel, lineno, rule, detail in violations:
        print(f"{rel}:{lineno}: {rule}: {detail}")

    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint: OK ({sum(1 for _ in iter_source_files(root))} files, "
          f"{len(list((root / 'src').rglob('*.hh')))} headers checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
