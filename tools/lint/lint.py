#!/usr/bin/env python3
"""pfsim project-rule linter.

Enforces rules the compiler cannot, run as a CTest (lint.project_rules):

  1. No raw ``new`` / ``delete`` outside src/util — ownership lives in
     smart pointers and containers everywhere else.
  2. No ``rand()`` / ``srand()`` — all randomness goes through
     util/random.hh so runs stay seed-reproducible.
  3. Every ``fatal()`` / ``panic()`` call carries a non-empty message.
  4. Every header under src/ is self-contained: it compiles alone
     (checked with ``$CXX -fsyntax-only``).
  5. No raw ``std::thread`` / ``std::jthread`` outside src/util and
     src/sim/parallel.* — concurrency goes through the job pool
     (util/thread_pool.hh) so sweeps stay deterministic and exception
     handling is solved once.  ``std::thread::hardware_concurrency``
     and ``std::this_thread`` are allowed everywhere.
  6. ``faultInject*`` hooks are called only from src/fault (and from
     tests) — the hardware model must never perturb itself.  Header
     files are exempt (that is where the hooks are declared), and
     ``Class::faultInjectX`` definitions in the owning .cc are not
     calls.
  7. No ``std::deque`` in src/cache or src/dram — the simulation
     kernel's hot queues use util/ring_buffer.hh, which keeps entries
     contiguous and allocation-free in the steady state
     (``std::priority_queue`` over a vector remains fine).
  8. Raw file I/O on simulator state — ``fopen`` or the
     ``<fstream>`` family inside src/ — is confined to src/snapshot,
     the one subsystem allowed to persist and reload machine state.
     Existing non-state I/O keeps its exemption: trace/file_trace.cc
     (trace ingest) and stats/perf_report.cc (report emission).
     fprintf/fputs on already-open streams (stdout/stderr logging) are
     not file I/O and never match.  Tests, benches and tools are
     exempt.

Exit status is non-zero when any rule is violated; each violation is
reported as ``file:line: rule: detail``.
"""

import argparse
import pathlib
import re
import subprocess
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
CXX_SUFFIXES = {".cc", ".hh"}

# Raw allocation: "new Type", "new (place) Type", "delete p",
# "delete[] p".  Word-boundary anchored so "renew"/"deleted" and plain
# words in comments like "a new instruction" do not match: the operator
# must be followed by a type-ish token or bracket, and "delete" must not
# be a defaulted/deleted special member (= delete).
RAW_NEW_RE = re.compile(r"(?<![\w.])new\s+(?:\(|[A-Za-z_][\w:<>]*\s*[({\[;])")
RAW_DELETE_RE = re.compile(r"(?<![\w.])delete\s*(?:\[\s*\])?\s+[A-Za-z_*(]")
DEFAULTED_DELETE_RE = re.compile(r"=\s*delete")

RAND_RE = re.compile(r"(?<![\w:.])s?rand\s*\(")

# Any mention of the thread types themselves (declaration, member,
# vector element, spawn) counts; static member access like
# std::thread::hardware_concurrency() does not, and std::this_thread
# never matches the literal "std::thread".
RAW_THREAD_RE = re.compile(r"std::j?thread\b(?!\s*::)")

EMPTY_MESSAGE_RE = re.compile(r"\b(fatal|panic)\s*\(\s*(\"\"\s*)?\)")

# std::deque in the hot memory-system queues (the <deque> include also
# counts: there is no legitimate use left in those directories).
HOT_DEQUE_RE = re.compile(r"std::deque\b|#\s*include\s*<deque>")

# Raw file I/O: an fopen() call or any <fstream>-family use.  The
# lookbehind keeps fprintf/fputs/reopen-style identifiers from
# matching; fread/fwrite/fclose only ever follow an fopen, so matching
# the open is enough to confine the whole idiom.
FILE_IO_RE = re.compile(
    r"(?<![\w.])(?:std::)?fopen\s*\("
    r"|std::[io]?fstream\b"
    r"|#\s*include\s*<fstream>")

# A faultInject* call site: the lookbehind rejects qualified names
# (``MshrFile::faultInjectReserve`` is the definition, not a call) and
# partial identifiers.
FAULT_HOOK_RE = re.compile(r"(?<![:\w])faultInject\w*\s*\(")

LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_strings(line: str) -> str:
    """Replace string literals with a placeholder literal."""
    return STRING_RE.sub('"s"', line)


def iter_source_files(root: pathlib.Path):
    for top in SOURCE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def check_text_rules(root: pathlib.Path):
    violations = []
    for path in iter_source_files(root):
        rel = path.relative_to(root)
        in_util = rel.parts[:2] == ("src", "util")
        may_thread = in_util or (
            rel.parts[:2] == ("src", "sim")
            and rel.name.startswith("parallel."))
        may_fault_inject = (rel.parts[0] == "tests"
                            or rel.parts[:2] == ("src", "fault")
                            or rel.suffix == ".hh")
        hot_queue_dir = rel.parts[:2] in (("src", "cache"),
                                          ("src", "dram"))
        may_file_io = (rel.parts[0] != "src"
                       or rel.parts[:2] == ("src", "snapshot")
                       or str(rel) in ("src/trace/file_trace.cc",
                                       "src/stats/perf_report.cc"))
        in_block_comment = False
        for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            line = raw
            if in_block_comment:
                end = line.find("*/")
                if end < 0:
                    continue
                line = line[end + 2:]
                in_block_comment = False
            if "/*" in line:
                start = line.find("/*")
                end = line.find("*/", start + 2)
                if end < 0:
                    in_block_comment = True
                    line = line[:start]
                else:
                    line = line[:start] + line[end + 2:]
            # The message check runs with string literals intact (an
            # empty literal IS the violation); the allocation checks
            # run with them blanked so prose in messages cannot match.
            line = LINE_COMMENT_RE.sub("", line)
            if EMPTY_MESSAGE_RE.search(line):
                violations.append(
                    (rel, lineno, "empty-fatal-message",
                     "fatal()/panic() must explain what went wrong"))
            line = strip_strings(line)

            if not in_util:
                no_default = DEFAULTED_DELETE_RE.sub("", line)
                if RAW_NEW_RE.search(line):
                    violations.append(
                        (rel, lineno, "no-raw-new",
                         "raw operator new outside src/util; use "
                         "std::make_unique or a container"))
                if RAW_DELETE_RE.search(no_default):
                    violations.append(
                        (rel, lineno, "no-raw-delete",
                         "raw operator delete outside src/util"))

            if RAND_RE.search(line):
                violations.append(
                    (rel, lineno, "no-rand",
                     "rand()/srand() is not seed-reproducible; use "
                     "util/random.hh"))

            if not may_fault_inject and FAULT_HOOK_RE.search(line):
                violations.append(
                    (rel, lineno, "fault-hook-confinement",
                     "faultInject* hooks may only be called from "
                     "src/fault (and tests); the model must not "
                     "perturb itself"))

            if not may_file_io and FILE_IO_RE.search(line):
                violations.append(
                    (rel, lineno, "file-io-confinement",
                     "raw file I/O in src/ belongs to src/snapshot; "
                     "persist simulator state through the checkpoint "
                     "store"))

            if hot_queue_dir and HOT_DEQUE_RE.search(line):
                violations.append(
                    (rel, lineno, "no-hot-deque",
                     "std::deque in src/cache|src/dram; the kernel's "
                     "hot queues use util/ring_buffer.hh"))

            if not may_thread and RAW_THREAD_RE.search(line):
                violations.append(
                    (rel, lineno, "no-raw-thread",
                     "raw std::thread outside src/util and "
                     "src/sim/parallel.*; run concurrent work "
                     "through ThreadPool/parallelFor "
                     "(util/thread_pool.hh)"))
    return violations


def check_headers_self_contained(root: pathlib.Path, cxx: str,
                                 std: str):
    violations = []
    headers = sorted((root / "src").rglob("*.hh"))
    for header in headers:
        rel = header.relative_to(root)
        result = subprocess.run(
            [cxx, f"-std={std}", "-fsyntax-only", "-x", "c++",
             "-I", str(root / "src"), str(header)],
            capture_output=True, text=True)
        if result.returncode != 0:
            first = result.stderr.strip().splitlines()
            detail = first[0] if first else "does not compile alone"
            violations.append(
                (rel, 1, "header-not-self-contained", detail))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("--cxx", default="c++",
                        help="compiler for the header self-containment "
                             "check (empty string skips it)")
    parser.add_argument("--std", default="c++20")
    args = parser.parse_args()

    root = args.root.resolve()
    violations = check_text_rules(root)
    if args.cxx:
        violations += check_headers_self_contained(root, args.cxx,
                                                   args.std)

    for rel, lineno, rule, detail in violations:
        print(f"{rel}:{lineno}: {rule}: {detail}")

    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint: OK ({sum(1 for _ in iter_source_files(root))} files, "
          f"{len(list((root / 'src').rglob('*.hh')))} headers checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
