#!/usr/bin/env python3
"""Self-tests for the project linter (ctest: lint.selftest).

Each text rule is probed with a known violation *and* the near-miss
that used to need a hand-tuned guard (the same construct inside a
comment or string, a qualified call, `= delete`, ...).  The header
self-containment check is exercised end to end against a fixture tree,
including the content-hash cache: the second run must be served
entirely from cache — the test makes a real compile impossible and
still expects the same answer.
"""

import os
import pathlib
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(
    __file__).resolve().parents[1] / "analyze"))

import cpplex    # noqa: E402
import lint      # noqa: E402


def run_rules(rel: str, text: str):
    """Rule hits for one pseudo-file: list of (rule, line)."""
    violations = lint.check_file_tokens(pathlib.PurePosixPath(rel),
                                        cpplex.lex(text))
    return [(rule, line) for _rel, line, rule, _detail in violations]


class TextRuleTests(unittest.TestCase):
    def assertFlags(self, rel, text, rule):
        hits = run_rules(rel, text)
        self.assertIn(rule, [r for r, _ in hits],
                      f"expected {rule} in {rel}: {text!r} -> {hits}")

    def assertClean(self, rel, text):
        self.assertEqual(run_rules(rel, text), [],
                         f"expected no hits in {rel}: {text!r}")

    # -- rule 1: raw new/delete --------------------------------------
    def test_raw_new_delete(self):
        self.assertFlags("src/cache/c.cc", "p = new Block(4);",
                         "no-raw-new")
        self.assertFlags("src/cache/c.cc", "delete p;",
                         "no-raw-delete")

    def test_new_near_misses(self):
        self.assertClean("src/cache/c.cc", "// allocate a new Block\n")
        self.assertClean("src/cache/c.cc", 'log("new Block made");')
        self.assertClean("src/cache/c.cc", "Cache(Cache&&) = delete;")
        self.assertClean("src/cache/c.cc", "int renewal = news[0];")
        self.assertClean("src/util/arena.cc",
                         "void* p = new char[n]; delete[] q;")

    # -- rule 2: rand ------------------------------------------------
    def test_rand(self):
        self.assertFlags("src/trace/t.cc", "int r = rand();", "no-rand")
        self.assertFlags("src/trace/t.cc", "srand(7);", "no-rand")
        self.assertClean("src/trace/t.cc", "int r = gen.rand();")
        self.assertClean("src/trace/t.cc", "int r = util::rand();")
        self.assertClean("src/trace/t.cc", "int rando = random_;")

    # -- rule 3: empty fatal/panic -----------------------------------
    def test_empty_fatal(self):
        self.assertFlags("src/sim/s.cc", "fatal();",
                         "empty-fatal-message")
        self.assertFlags("src/sim/s.cc", 'panic("");',
                         "empty-fatal-message")
        self.assertClean("src/sim/s.cc", 'fatal("mshr overflow");')

    # -- rule 5: raw std::thread -------------------------------------
    def test_raw_thread(self):
        self.assertFlags("src/sim/runner.cc", "std::thread worker;",
                         "no-raw-thread")
        self.assertFlags("src/cache/c.cc", "std::jthread j(fn);",
                         "no-raw-thread")

    def test_thread_near_misses(self):
        self.assertClean("src/sim/runner.cc",
                         "auto n = std::thread::hardware_concurrency();")
        self.assertClean("src/sim/runner.cc",
                         "std::this_thread::yield();")
        self.assertClean("src/sim/runner.cc", '// spawn a std::thread')
        self.assertClean("src/sim/parallel.cc", "std::thread worker;")
        self.assertClean("src/util/thread_pool.cc",
                         "std::thread worker;")
        self.assertClean("src/sim/service/service.cc",
                         "std::thread beat(fn);")

    # -- rule 6: faultInject confinement -----------------------------
    def test_fault_hooks(self):
        self.assertFlags("src/dram/dram.cc", "faultInjectBit(addr);",
                         "fault-hook-confinement")
        self.assertClean("src/fault/inject.cc",
                         "faultInjectBit(addr);")
        self.assertClean("src/dram/dram.hh", "void faultInjectBit(x);")
        self.assertClean("src/dram/dram.cc",
                         "void Dram::faultInjectBit(uint64_t a) {}")
        self.assertClean("tests/test_fault.cc",
                         "faultInjectBit(addr);")

    # -- rule 7: deque in hot dirs -----------------------------------
    def test_hot_deque(self):
        self.assertFlags("src/cache/mshr.cc", "#include <deque>\n",
                         "no-hot-deque")
        self.assertFlags("src/dram/chan.cc", "std::deque<Req> q_;",
                         "no-hot-deque")
        self.assertClean("src/trace/t.cc", "std::deque<Req> q_;")
        self.assertClean("src/cache/mshr.cc", "// was a std::deque")

    # -- rule 8: file I/O confinement --------------------------------
    def test_file_io(self):
        self.assertFlags("src/dram/d.cc", 'FILE* f = fopen(p, "r");',
                         "file-io-confinement")
        self.assertFlags("src/cache/c.cc", "#include <fstream>\n",
                         "file-io-confinement")
        self.assertFlags("src/ppf/p.cc", "std::ofstream out(path);",
                         "file-io-confinement")

    def test_file_io_exemptions(self):
        self.assertClean("src/snapshot/store.cc",
                         "std::ofstream out(path);")
        self.assertClean("src/trace/file_trace.cc",
                         "std::ifstream in(path);")
        self.assertClean("src/stats/perf_report.cc",
                         "std::ofstream out(path);")
        self.assertClean("tools/sweep/gen.cc",
                         "std::ofstream out(path);")
        self.assertClean("src/dram/d.cc",
                         'fprintf(stderr, "MIPS %f", m);')

    # -- rule 9: intrinsics confinement ------------------------------
    def test_intrinsics_confinement(self):
        self.assertFlags("src/cache/c.cc", "#include <immintrin.h>\n",
                         "intrinsics-confinement")
        self.assertFlags("src/core/weight_tables.cc",
                         "#include <emmintrin.h>\n",
                         "intrinsics-confinement")
        self.assertFlags("tests/test_simd.cc",
                         "#include <x86intrin.h>\n",
                         "intrinsics-confinement")
        self.assertFlags("bench/kern.cc", "#include <arm_neon.h>\n",
                         "intrinsics-confinement")

    def test_intrinsics_exemptions(self):
        self.assertClean("src/core/simd.hh",
                         "#include <immintrin.h>\n")
        self.assertClean("src/cache/c.cc",
                         "// gathers via <immintrin.h> wrappers\n")
        self.assertClean("src/cache/c.cc",
                         '#include "core/simd.hh"\n')

    # -- rule 10: process-management confinement ---------------------
    def test_process_confinement(self):
        self.assertFlags("src/sim/runner.cc", "pid_t p = fork();",
                         "process-confinement")
        self.assertFlags("src/cache/c.cc", "::kill(pid, SIGKILL);",
                         "process-confinement")
        self.assertFlags("bench/fig09.cc", "execvp(argv[0], argv);",
                         "process-confinement")
        self.assertFlags("src/snapshot/store.cc", "pipe2(fds, 0);",
                         "process-confinement")
        self.assertFlags("src/sim/parallel.cc",
                         "waitpid(pid, &st, 0);",
                         "process-confinement")
        self.assertFlags("src/util/io.cc", "dup2(null_fd, 1);",
                         "process-confinement")

    # -- rule 11: event-wheel confinement ----------------------------
    def test_wheel_confinement(self):
        self.assertFlags("src/cache/cache.cc",
                         "sim::EventWheel &w = system.wheel();",
                         "wheel-confinement")
        self.assertFlags("src/cpu/core.hh",
                         "sim::EventWheel *wheel_ = nullptr;",
                         "wheel-confinement")
        self.assertFlags("src/dram/dram.cc",
                         '#include "sim/event_wheel.hh"\n',
                         "wheel-confinement")

    def test_wheel_confinement_exemptions(self):
        self.assertClean("src/sim/system.cc",
                         "wheel_ = std::make_unique<EventWheel>(n);")
        self.assertClean("src/sim/event_wheel.cc",
                         "EventWheel::EventWheel(unsigned n) {}")
        self.assertClean("tests/test_sim.cc",
                         "sim::EventWheel wheel(8);")
        self.assertClean("src/cache/cache.hh",
                         "util::TickWaker *waker_ = nullptr;")
        self.assertClean("src/cache/cache.cc",
                         "// the event wheel re-schedules us via wake()")

    def test_process_confinement_exemptions(self):
        self.assertClean("src/sim/service/supervisor.cc",
                         "pid_t p = ::fork();")
        self.assertClean("src/sim/service/service.cc",
                         "::kill(::getpid(), SIGKILL);")
        self.assertClean("tests/test_service.cc", "pipe(fds);")
        # Member calls and qualified member definitions are other
        # functions, not the syscalls.
        self.assertClean("src/sim/runner.cc", "sup.kill(worker);")
        self.assertClean("src/sim/runner.cc", "sup->kill(worker);")
        self.assertClean("src/sim/runner.cc",
                         "void Supervisor::kill(WorkerProc &w) {}")
        self.assertClean("src/cache/c.cc", "// never call fork() here")
        self.assertClean("src/cache/c.cc", "int forks = fork_count;")


GOOD_HH = """#pragma once
#include <cstdint>
inline std::uint64_t twice(std::uint64_t v) { return v * 2; }
"""

BAD_HH = """#pragma once
inline std::string name() { return "x"; }  // missing <string>
"""


@unittest.skipUnless(shutil.which(os.environ.get("CXX", "c++")),
                     "no C++ compiler on PATH")
class HeaderCheckTests(unittest.TestCase):
    def setUp(self):
        self.cxx = os.environ.get("CXX", "c++")
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.root = pathlib.Path(self._tmp.name)
        self.cache = self.root / "cache"
        (self.root / "src").mkdir()
        (self.root / "src" / "good.hh").write_text(GOOD_HH)
        (self.root / "src" / "bad.hh").write_text(BAD_HH)

    def run_check(self):
        return lint.check_headers_self_contained(
            self.root, self.cxx, "c++20", self.cache, jobs=2)

    def test_detects_and_caches(self):
        first = self.run_check()
        self.assertEqual([str(rel) for rel, *_ in first],
                         ["src/bad.hh"])
        self.assertEqual(first[0][2], "header-not-self-contained")

        # Second run must come entirely from cache: make real
        # compilation impossible and expect the identical verdict.
        orig = lint._compile_header
        lint._compile_header = lambda *a: self.fail(
            "cache miss on unchanged tree")
        try:
            second = self.run_check()
        finally:
            lint._compile_header = orig
        self.assertEqual(first, second)

    def test_cache_invalidates_on_edit(self):
        self.run_check()
        # Fix bad.hh; its content hash changes, so it recompiles.
        (self.root / "src" / "bad.hh").write_text(
            "#pragma once\n#include <string>\n"
            'inline std::string name() { return "x"; }\n')
        self.assertEqual(self.run_check(), [])

    def test_cache_keys_include_closure(self):
        (self.root / "src" / "dep.hh").write_text(
            "#pragma once\nusing feature_t = int;\n")
        (self.root / "src" / "user.hh").write_text(
            '#pragma once\n#include "dep.hh"\n'
            "inline feature_t zero() { return 0; }\n")
        self.assertEqual([str(rel) for rel, *_ in self.run_check()],
                         ["src/bad.hh"])
        # Break the *dependency*; user.hh's own bytes are unchanged
        # but its closure hash is not — the cache must not mask this.
        (self.root / "src" / "dep.hh").write_text("#pragma once\n")
        violating = {str(rel) for rel, *_ in self.run_check()}
        self.assertIn("src/user.hh", violating)


if __name__ == "__main__":
    unittest.main(verbosity=2)
