#!/usr/bin/env python3
"""Diff two pfsim bench_throughput.json reports.

Usage:
    compare.py BASELINE.json CURRENT.json [--max-regression FRAC]
               [--max-rss-growth FRAC]

Joins scenarios by name and compares MIPS.  Any scenario that lost
more than 10% prints a WARN line; any scenario that lost more than
--max-regression (default 0.10) fails the comparison with exit code 1.
CI runs with --max-regression 0.5 so shared-runner noise only warns,
while a >2x slowdown (ratio < 0.5) still hard-fails.

Memory is gated too: a scenario whose peak RSS (``max_rss_kb``,
sampled right after the scenario ran) grew by more than
--max-rss-growth (default 0.25) over the baseline fails the
comparison.  MIPS can stay flat while a pool or arena leaks; RSS
growth is how that shows up.  Baselines predating per-scenario RSS
are skipped scenario-by-scenario but still checked at report level.

Scenarios present in only one report are reported and fail the
comparison: a vanished scenario usually means the harness silently
stopped covering it.

--min-speedup NAME=FACTOR (repeatable) gates the event wheel itself:
the CURRENT report's ``speedup_vs_naive`` for scenario NAME must be at
least FACTOR.  The ratio is measured within one run on one host, so it
is immune to runner speed in a way absolute MIPS is not — it fails
only when the wheel genuinely stopped paying for itself (for example,
a nextEventCycle() bound went conservative and the wheel degenerated
into the naive loop).

The final summary line carries each scenario's speedup ratio
(current MIPS / baseline MIPS) so a single log line answers "what
did this change do to simulator speed, per workload".
"""

import argparse
import json
import sys

WARN_REGRESSION = 0.10


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as err:
        sys.exit(f"compare: cannot read {path}: {err}")
    if report.get("schema") != "pfsim-bench-throughput-v1":
        sys.exit(f"compare: {path}: unknown schema "
                 f"{report.get('schema')!r}")
    return report, {s["name"]: s for s in report.get("scenarios", [])}


def check_rss(name, base_kb, cur_kb, max_growth):
    """One RSS comparison; prints its verdict.  Returns True on fail."""
    if not base_kb:
        return False          # no baseline sample to compare against
    growth = cur_kb / base_kb - 1.0
    if growth > max_growth:
        print(f"FAIL {name}: max_rss_kb {base_kb} -> {cur_kb} "
              f"(+{growth:.0%}, limit +{max_growth:.0%})")
        return True
    return False


def main():
    parser = argparse.ArgumentParser(
        description="Compare two bench_throughput.json reports.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression", type=float, default=0.10, metavar="FRAC",
        help="fail when a scenario's MIPS drops by more than this "
             "fraction (default: 0.10)")
    parser.add_argument(
        "--max-rss-growth", type=float, default=0.25, metavar="FRAC",
        help="fail when a scenario's max_rss_kb grows by more than "
             "this fraction (default: 0.25)")
    parser.add_argument(
        "--min-speedup", action="append", default=[],
        metavar="NAME=FACTOR",
        help="fail when the current report's speedup_vs_naive for "
             "scenario NAME is below FACTOR (repeatable)")
    args = parser.parse_args()

    gates = []
    for spec in args.min_speedup:
        name, sep, factor = spec.rpartition("=")
        try:
            gates.append((name, float(factor)))
        except ValueError:
            sep = ""
        if not sep or not name:
            sys.exit(f"compare: bad --min-speedup {spec!r} "
                     "(expected NAME=FACTOR)")

    base_report, baseline = load(args.baseline)
    cur_report, current = load(args.current)

    failed = False
    ratios = []
    for name in sorted(baseline.keys() | current.keys()):
        if name not in current:
            print(f"FAIL {name}: missing from current report")
            failed = True
            continue
        if name not in baseline:
            print(f"NEW  {name}: {current[name]['mips']:.2f} MIPS "
                  "(no baseline)")
            continue

        base_mips = baseline[name]["mips"]
        cur_mips = current[name]["mips"]
        if base_mips <= 0:
            print(f"SKIP {name}: baseline has no timing")
            continue

        ratio = cur_mips / base_mips
        ratios.append((name, ratio))
        line = (f"{name}: {base_mips:.2f} -> {cur_mips:.2f} MIPS "
                f"({ratio:.1%} of baseline)")
        if ratio < 1.0 - args.max_regression:
            print(f"FAIL {line}")
            failed = True
        elif ratio < 1.0 - WARN_REGRESSION:
            print(f"WARN {line}")
        else:
            print(f"ok   {line}")

        failed |= check_rss(name,
                            baseline[name].get("max_rss_kb", 0),
                            current[name].get("max_rss_kb", 0),
                            args.max_rss_growth)

    # Whole-process peak as a backstop (also covers old baselines
    # that predate per-scenario RSS samples).
    failed |= check_rss("<report>", base_report.get("max_rss_kb", 0),
                        cur_report.get("max_rss_kb", 0),
                        args.max_rss_growth)

    # Event-wheel gates: the fast path must keep beating the naive
    # loop by the required factor in the current report.
    for name, factor in gates:
        if name not in current:
            print(f"FAIL wheel {name}: scenario missing from "
                  "current report")
            failed = True
            continue
        speedup = current[name].get("speedup_vs_naive", 0.0)
        line = (f"wheel {name}: {speedup:.2f}x vs naive "
                f"(required {factor:.2f}x)")
        if speedup < factor:
            print(f"FAIL {line}")
            failed = True
        else:
            print(f"ok   {line}")

    summary = " ".join(f"{name}={ratio:.2f}x" for name, ratio in ratios)
    if failed:
        print(f"compare: regression beyond threshold; "
              f"speedup {summary}")
        return 1
    print(f"compare: ok; speedup {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
