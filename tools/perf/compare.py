#!/usr/bin/env python3
"""Diff two pfsim bench_throughput.json reports.

Usage:
    compare.py BASELINE.json CURRENT.json [--max-regression FRAC]

Joins scenarios by name and compares MIPS.  Any scenario that lost
more than 10% prints a WARN line; any scenario that lost more than
--max-regression (default 0.10) fails the comparison with exit code 1.
CI runs with --max-regression 0.5 so shared-runner noise only warns,
while a >2x slowdown (ratio < 0.5) still hard-fails.

Scenarios present in only one report are reported and fail the
comparison: a vanished scenario usually means the harness silently
stopped covering it.
"""

import argparse
import json
import sys

WARN_REGRESSION = 0.10


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as err:
        sys.exit(f"compare: cannot read {path}: {err}")
    if report.get("schema") != "pfsim-bench-throughput-v1":
        sys.exit(f"compare: {path}: unknown schema "
                 f"{report.get('schema')!r}")
    return {s["name"]: s for s in report.get("scenarios", [])}


def main():
    parser = argparse.ArgumentParser(
        description="Compare two bench_throughput.json reports.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression", type=float, default=0.10, metavar="FRAC",
        help="fail when a scenario's MIPS drops by more than this "
             "fraction (default: 0.10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failed = False
    for name in sorted(baseline.keys() | current.keys()):
        if name not in current:
            print(f"FAIL {name}: missing from current report")
            failed = True
            continue
        if name not in baseline:
            print(f"NEW  {name}: {current[name]['mips']:.2f} MIPS "
                  "(no baseline)")
            continue

        base_mips = baseline[name]["mips"]
        cur_mips = current[name]["mips"]
        if base_mips <= 0:
            print(f"SKIP {name}: baseline has no timing")
            continue

        ratio = cur_mips / base_mips
        line = (f"{name}: {base_mips:.2f} -> {cur_mips:.2f} MIPS "
                f"({ratio:.1%} of baseline)")
        if ratio < 1.0 - args.max_regression:
            print(f"FAIL {line}")
            failed = True
        elif ratio < 1.0 - WARN_REGRESSION:
            print(f"WARN {line}")
        else:
            print(f"ok   {line}")

    if failed:
        print(f"compare: regression beyond "
              f"{args.max_regression:.0%} threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
