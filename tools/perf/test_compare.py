#!/usr/bin/env python3
"""Self-test for compare.py: injected regressions must flip the exit
code.  Registered with ctest as perf.compare_selftest."""

import json
import subprocess
import sys
import tempfile


def report(path, mips_by_name, rss_by_name=None, total_rss=1):
    rss_by_name = rss_by_name or {}
    scenarios = [
        {
            "name": name,
            "instructions": 1000000,
            "sim_cycles": 2000000,
            "host_seconds": 1.0,
            "mips": mips,
            "speedup_vs_naive": 1.0,
            "max_rss_kb": rss_by_name.get(name, 1000),
        }
        for name, mips in mips_by_name.items()
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "pfsim-bench-throughput-v1",
                   "max_rss_kb": total_rss,
                   "scenarios": scenarios}, handle)


def run(compare, baseline, current, *extra):
    return subprocess.run(
        [sys.executable, compare, baseline, current, *extra],
        capture_output=True, text=True)


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: test_compare.py path/to/compare.py")
    compare = sys.argv[1]

    failures = []

    def expect(name, proc, want):
        if proc.returncode != want:
            failures.append(f"{name}: exit {proc.returncode}, "
                            f"expected {want}\n{proc.stdout}")

    with tempfile.TemporaryDirectory() as tmp:
        base = f"{tmp}/base.json"
        cur = f"{tmp}/cur.json"
        report(base, {"a": 10.0, "b": 10.0})

        # A 20% regression on one scenario must fail by default.
        report(cur, {"a": 8.0, "b": 10.0})
        expect("20pct-regression", run(compare, base, cur), 1)

        # ... but only warn under the CI threshold (hard-fail at >2x).
        expect("20pct-warn-only",
               run(compare, base, cur, "--max-regression", "0.5"), 0)

        # A 60% regression (>2x slowdown) fails even the CI threshold.
        report(cur, {"a": 4.0, "b": 10.0})
        expect("2x-regression",
               run(compare, base, cur, "--max-regression", "0.5"), 1)

        # Small noise passes; improvements pass.
        report(cur, {"a": 9.5, "b": 12.0})
        expect("noise-passes", run(compare, base, cur), 0)

        # The summary line reports each scenario's speedup ratio.
        proc = run(compare, base, cur)
        last = proc.stdout.strip().splitlines()[-1]
        if "a=0.95x" not in last or "b=1.20x" not in last:
            failures.append(f"summary-ratios: missing per-scenario "
                            f"ratios in {last!r}")

        # A scenario vanishing from the current report fails.
        report(cur, {"a": 10.0})
        expect("missing-scenario", run(compare, base, cur), 1)

        # Per-scenario RSS growth beyond 25% fails even with MIPS flat
        # (a leaking pool shows up here, not in timing).
        report(cur, {"a": 10.0, "b": 10.0},
               rss_by_name={"a": 1300, "b": 1000})
        expect("rss-growth-fails", run(compare, base, cur), 1)
        expect("rss-growth-custom-limit",
               run(compare, base, cur, "--max-rss-growth", "0.5"), 0)

        # RSS within the limit passes.
        report(cur, {"a": 10.0, "b": 10.0},
               rss_by_name={"a": 1200, "b": 1000})
        expect("rss-stable-passes", run(compare, base, cur), 0)

        # Report-level RSS backstop (covers baselines without
        # per-scenario samples).
        report(cur, {"a": 10.0, "b": 10.0}, total_rss=2)
        expect("report-rss-fails", run(compare, base, cur), 1)

        # A baseline without RSS samples is skipped, not failed.
        report(base, {"a": 10.0}, rss_by_name={"a": 0}, total_rss=0)
        report(cur, {"a": 10.0}, rss_by_name={"a": 5000},
               total_rss=5000)
        expect("no-baseline-rss-skips", run(compare, base, cur), 0)

    if failures:
        print("\n".join(failures))
        return 1
    print("compare.py self-test: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
